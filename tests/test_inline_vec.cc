#include "common/inline_vec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace swiftsim {
namespace {

TEST(InlineVec, StaysInlineUpToN) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.on_heap());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, SpillsToHeapPastN) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 9; ++i) v.push_back(i);
  EXPECT_TRUE(v.on_heap());
  EXPECT_GE(v.capacity(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, ClearKeepsHeapCapacity) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_TRUE(v.on_heap());
}

TEST(InlineVec, EraseIsOrderPreserving) {
  InlineVec<int, 8> v{0, 1, 2, 3, 4};
  auto* it = v.erase(v.begin() + 1);
  EXPECT_EQ(*it, 2);
  const int expect[] = {0, 2, 3, 4};
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], expect[i]);
}

TEST(InlineVec, CopyAndAssign) {
  InlineVec<std::string, 2> a{"x", "y", "z"};  // spilled
  InlineVec<std::string, 2> b(a);
  EXPECT_EQ(a, b);
  InlineVec<std::string, 2> c;
  c = a;
  EXPECT_EQ(a, c);
  a.clear();
  EXPECT_EQ(b.size(), 3u);  // deep copies unaffected
  EXPECT_EQ(b[2], "z");
}

TEST(InlineVec, MoveStealsHeapBlock) {
  InlineVec<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  const int* block = a.data();
  InlineVec<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), block);  // heap block stolen, not copied
  EXPECT_TRUE(a.empty());
  ASSERT_EQ(b.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, MoveOfInlineElementsMoves) {
  InlineVec<std::unique_ptr<int>, 4> a;
  a.emplace_back(std::make_unique<int>(7));
  InlineVec<std::unique_ptr<int>, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(*b[0], 7);
}

TEST(InlineVec, InitializerListAssignment) {
  InlineVec<int, 4> v;
  v = {5, 6};
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[1], 6);
}

TEST(InlineVec, ResizeGrowsAndShrinks) {
  InlineVec<int, 4> v{1, 2, 3};
  v.resize(5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[3], 0);  // value-initialized
  v.resize(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(InlineVec, DestructorsRunOnClear) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    InlineVec<Probe, 2> v;
    for (int i = 0; i < 5; ++i) v.push_back(Probe{counter});
    const int before = *counter;  // temporaries already destroyed
    v.clear();
    EXPECT_EQ(*counter, before + 5);
  }
}

TEST(InlineVec, EqualityComparesElements) {
  InlineVec<int, 4> a{1, 2};
  InlineVec<int, 4> b{1, 2};
  InlineVec<int, 4> c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace swiftsim
