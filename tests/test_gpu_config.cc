#include "config/gpu_config.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "config/ini.h"
#include "config/presets.h"

namespace swiftsim {
namespace {

TEST(GpuConfig, DefaultIsValid) {
  GpuConfig cfg;
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(GpuConfig, EnumRoundTrips) {
  for (auto p : {SchedPolicy::kGto, SchedPolicy::kLrr,
                 SchedPolicy::kTwoLevel}) {
    EXPECT_EQ(SchedPolicyFromString(ToString(p)), p);
  }
  for (auto p : {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                 ReplacementPolicy::kRandom}) {
    EXPECT_EQ(ReplacementPolicyFromString(ToString(p)), p);
  }
  for (auto p : {WritePolicy::kWriteThrough, WritePolicy::kWriteBack}) {
    EXPECT_EQ(WritePolicyFromString(ToString(p)), p);
  }
  EXPECT_THROW(SchedPolicyFromString("bogus"), SimError);
  EXPECT_THROW(ReplacementPolicyFromString("bogus"), SimError);
  EXPECT_THROW(WritePolicyFromString("bogus"), SimError);
}

TEST(GpuConfig, ExecUnitIssueInterval) {
  ExecUnitConfig full{32, 4, 0};
  EXPECT_EQ(full.issue_interval(), 1u);
  ExecUnitConfig half{16, 4, 0};
  EXPECT_EQ(half.issue_interval(), 2u);
  ExecUnitConfig sfu{4, 21, 0};
  EXPECT_EQ(sfu.issue_interval(), 8u);
  ExecUnitConfig dp{1, 8, 64};  // "0.5x" provisioning via override
  EXPECT_EQ(dp.issue_interval(), 64u);
}

TEST(GpuConfig, CacheDerivedGeometry) {
  CacheParams c;
  c.size_bytes = 64 * 1024;
  c.assoc = 4;
  c.line_bytes = 128;
  c.sector_bytes = 32;
  EXPECT_EQ(c.num_sets(), 128u);
  EXPECT_EQ(c.sectors_per_line(), 4u);
}

TEST(GpuConfig, ValidateCatchesBadValues) {
  GpuConfig cfg;
  cfg.num_sms = 0;
  EXPECT_THROW(cfg.Validate(), SimError);

  cfg = GpuConfig();
  cfg.max_warps_per_sm = 31;  // not divisible by 4 sub-cores
  EXPECT_THROW(cfg.Validate(), SimError);

  cfg = GpuConfig();
  cfg.l1.line_bytes = 96;  // not a power of two
  EXPECT_THROW(cfg.Validate(), SimError);

  cfg = GpuConfig();
  cfg.l1.sector_bytes = 256;  // sector larger than line
  EXPECT_THROW(cfg.Validate(), SimError);

  cfg = GpuConfig();
  cfg.l2.line_bytes = 64;  // mismatched with L1 (sector protocol)
  EXPECT_THROW(cfg.Validate(), SimError);

  cfg = GpuConfig();
  cfg.dram.row_hit_latency = cfg.dram.latency + 1;
  EXPECT_THROW(cfg.Validate(), SimError);
}

TEST(GpuConfig, IniRoundTripPreservesEverything) {
  const GpuConfig original = Rtx2080TiConfig();
  const auto ini = IniFile::ParseString(original.ToIniString());
  const GpuConfig reloaded = GpuConfig::FromIni(ini);
  EXPECT_EQ(reloaded.ToIniString(), original.ToIniString());
  EXPECT_EQ(reloaded.name, "rtx2080ti");
  EXPECT_EQ(reloaded.num_sms, 68u);
  EXPECT_EQ(reloaded.l1.mshr_entries, 256u);
  EXPECT_EQ(reloaded.l2.mshr_max_merge, 4u);
  EXPECT_EQ(reloaded.sched_policy, SchedPolicy::kGto);
}

TEST(GpuConfig, SparseOverrideOnBase) {
  const auto ini = IniFile::ParseString("[gpu]\nnum_sms = 10\n");
  const GpuConfig cfg = GpuConfig::FromIni(ini, Rtx2080TiConfig());
  EXPECT_EQ(cfg.num_sms, 10u);
  // Everything else keeps the preset values.
  EXPECT_EQ(cfg.l1.latency, Rtx2080TiConfig().l1.latency);
  EXPECT_EQ(cfg.num_mem_partitions, 22u);
}

TEST(GpuConfig, FromIniValidates) {
  const auto ini = IniFile::ParseString("[gpu]\nnum_sms = 0\n");
  EXPECT_THROW(GpuConfig::FromIni(ini), SimError);
}

TEST(GpuConfig, DerivedQuantities) {
  const GpuConfig cfg = Rtx2080TiConfig();
  EXPECT_EQ(cfg.warps_per_sub_core(), 8u);
  EXPECT_EQ(cfg.cuda_cores(), 4352u);  // Table I
  EXPECT_EQ(cfg.total_l2_bytes(), 22ull * 256 * 1024);  // 5.5 MB
}

}  // namespace
}  // namespace swiftsim
