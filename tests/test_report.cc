#include "sim/report.h"

#include <gtest/gtest.h>

#include "config/presets.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

TEST(PerfReport, AggregatesSyntheticMetrics) {
  SimResult r;
  r.total_cycles = 1000;
  r.instructions = 2500;
  r.metrics = {
      {"sm0.active_cycles", 600}, {"sm0.stall_cycles", 200},
      {"sm1.active_cycles", 300}, {"sm1.stall_cycles", 100},
      {"sm0.completed_ctas", 3},  {"sm1.completed_ctas", 5},
      {"sm0.l1.accesses", 100},   {"sm0.l1.hits", 80},
      {"sm1.l1.accesses", 100},   {"sm1.l1.hits", 40},
      {"sm0.l1.reservation_fails", 7},
      {"l2.0.accesses", 50},      {"l2.0.hits", 25},
      {"l2.0.reservation_fails", 3},
      {"dram.0.reads", 20},       {"dram.0.writes", 5},
      {"dram.0.row_hits", 10},    {"dram.0.bytes", 3200},
      {"noc.req.bytes", 111},     {"noc.resp.bytes", 222},
      {"driver.cycles_skipped", 400}, {"driver.skip_jumps", 4},
      {"memo.hits", 6},           {"memo.misses", 2},
      {"memo.replayed_cycles", 5000},
  };
  const PerfReport rep = BuildReport(r);
  EXPECT_DOUBLE_EQ(rep.ipc, 2.5);
  EXPECT_DOUBLE_EQ(rep.sm_busy_fraction, 900.0 / 1200.0);
  EXPECT_EQ(rep.completed_ctas, 8u);
  EXPECT_EQ(rep.l1_accesses, 200u);
  EXPECT_DOUBLE_EQ(rep.l1_hit_rate, 120.0 / 200.0);
  EXPECT_DOUBLE_EQ(rep.l2_hit_rate, 0.5);
  EXPECT_EQ(rep.dram_reads, 20u);
  EXPECT_EQ(rep.dram_bytes, 3200u);
  EXPECT_DOUBLE_EQ(rep.dram_row_hit_rate, 10.0 / 25.0);
  EXPECT_EQ(rep.noc_bytes, 333u);
  EXPECT_EQ(rep.reservation_fails, 10u);
  EXPECT_EQ(rep.cycles_skipped, 400u);
  EXPECT_EQ(rep.skip_jumps, 4u);
  EXPECT_EQ(rep.memo_hits, 6u);
  EXPECT_EQ(rep.memo_misses, 2u);
  EXPECT_EQ(rep.memo_cycles_avoided, 5000u);
  EXPECT_FALSE(rep.ToString().empty());
}

TEST(PerfReport, EmptyMetricsGiveZeros) {
  SimResult r;
  r.total_cycles = 10;
  r.instructions = 0;
  const PerfReport rep = BuildReport(r);
  EXPECT_DOUBLE_EQ(rep.ipc, 0.0);
  EXPECT_DOUBLE_EQ(rep.l1_hit_rate, 0.0);
  EXPECT_EQ(rep.noc_bytes, 0u);
}

TEST(PerfReport, EndToEndFromRealRun) {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  WorkloadScale s;
  s.scale = 0.03;
  const Application app = BuildWorkload("GEMM", s);
  GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
  const PerfReport rep = BuildReport(model.RunApplication(app));
  EXPECT_GT(rep.ipc, 0.0);
  EXPECT_GT(rep.l1_accesses, 0u);
  EXPECT_GT(rep.completed_ctas, 0u);
  EXPECT_GT(rep.sm_busy_fraction, 0.0);
  EXPECT_LE(rep.sm_busy_fraction, 1.0);
  EXPECT_LE(rep.l1_hit_rate, 1.0);
}

}  // namespace
}  // namespace swiftsim
