// Facade and parallel-runner integration tests.
#include "swiftsim/simulator.h"

#include <gtest/gtest.h>

#include "config/presets.h"
#include "swiftsim/parallel.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application SmallApp(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.03;
  return BuildWorkload(name, s);
}

TEST(Simulator, AllLevelsRunAndLabelResults) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("NW");
  for (SimLevel level : {SimLevel::kSilicon, SimLevel::kDetailed,
                         SimLevel::kSwiftSimBasic,
                         SimLevel::kSwiftSimMemory}) {
    const SimResult r = RunSimulation(app, cfg, level);
    EXPECT_GT(r.total_cycles, 0u) << ToString(level);
    EXPECT_EQ(r.simulator, ToString(level));
    EXPECT_EQ(r.app, "NW");
    EXPECT_GT(r.wall_seconds, 0.0);
  }
}

TEST(Simulator, ReusableHandleRunsRepeatably) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  Simulator sim(app, cfg, SimLevel::kSwiftSimMemory);
  const SimResult a = sim.Run();
  const SimResult b = sim.Run();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_NE(sim.profile(), nullptr);  // pre-pass ran once
}

TEST(Simulator, NonAnalyticalLevelsSkipPrepass) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  Simulator sim(app, cfg, SimLevel::kDetailed);
  EXPECT_EQ(sim.profile(), nullptr);
}

TEST(ParallelRunner, AppBatchMatchesSerialResults) {
  const GpuConfig cfg = SmallGpu();
  std::vector<Application> apps;
  for (const char* name : {"SM", "GEMM", "BFS"}) {
    apps.push_back(SmallApp(name));
  }
  const ParallelBatchResult batch =
      RunAppsParallel(apps, cfg, SimLevel::kSwiftSimBasic, 2);
  ASSERT_EQ(batch.results.size(), 3u);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const SimResult serial =
        RunSimulation(apps[i], cfg, SimLevel::kSwiftSimBasic);
    EXPECT_EQ(batch.results[i].total_cycles, serial.total_cycles)
        << apps[i].name;
    EXPECT_EQ(batch.results[i].app, apps[i].name);
  }
  EXPECT_GT(batch.wall_seconds, 0.0);
}

TEST(ParallelRunner, SmParallelDeterministicAcrossThreadCounts) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("GRU");
  const SimResult one = RunSmParallelMemory(app, cfg, 1);
  const SimResult four = RunSmParallelMemory(app, cfg, 4);
  EXPECT_EQ(one.total_cycles, four.total_cycles);
  EXPECT_EQ(one.instructions, four.instructions);
  EXPECT_EQ(one.instructions, app.TotalInstrs());
}

TEST(ParallelRunner, SmParallelTracksSerialMemoryMode) {
  // Static round-robin CTA assignment is a documented approximation of
  // the greedy dispatcher: cycle counts must stay within a few percent.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  const SimResult serial =
      RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
  const SimResult par = RunSmParallelMemory(app, cfg, 2);
  const double rel = std::abs(static_cast<double>(par.total_cycles) -
                              static_cast<double>(serial.total_cycles)) /
                     static_cast<double>(serial.total_cycles);
  EXPECT_LT(rel, 0.25);
}

TEST(ParallelRunner, RejectsZeroThreads) {
  const GpuConfig cfg = SmallGpu();
  const std::vector<Application> apps{SmallApp("SM")};
  EXPECT_THROW(RunAppsParallel(apps, cfg, SimLevel::kSwiftSimBasic, 0),
               SimError);
  EXPECT_THROW(RunSmParallelMemory(apps[0], cfg, 0), SimError);
}

}  // namespace
}  // namespace swiftsim
