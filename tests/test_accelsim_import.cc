#include "trace/accelsim_import.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/status.h"

namespace swiftsim {
namespace {

constexpr const char* kHeader =
    "-kernel name = vecadd\n"
    "-kernel id = 3\n"
    "-grid dim = (4,2,1)\n"
    "-block dim = (64,1,1)\n"
    "-shmem = 1024\n"
    "-nregs = 24\n";

std::shared_ptr<KernelTrace> Parse(const std::string& text) {
  std::stringstream ss(text);
  return ImportAccelSimKernel(ss);
}

TEST(AccelSimImport, HeaderFields) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  const KernelInfo& info = k->info();
  EXPECT_EQ(info.name, "vecadd");
  EXPECT_EQ(info.id, 3u);
  EXPECT_EQ(info.num_ctas, 8u);         // 4*2*1
  EXPECT_EQ(info.threads_per_cta, 64u);
  EXPECT_EQ(info.warps_per_cta, 2u);
  EXPECT_EQ(info.smem_bytes_per_cta, 1024u);
  EXPECT_EQ(info.regs_per_thread, 24u);
}

TEST(AccelSimImport, InstructionFields) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 3\n"
                       "0008 ffffffff 1 R4 IMAD.WIDE 2 R2 R3 0\n"
                       "0010 0000ffff 1 R5 FFMA 3 R4 R4 R5 0\n"
                       "0018 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  const WarpTrace& w = k->variant(0).warps[0];
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].pc, 0x8u);
  EXPECT_EQ(w[0].op, Opcode::kIMad);  // mods stripped
  EXPECT_EQ(w[0].dst, 4);
  EXPECT_EQ(w[0].src[0], 2);
  EXPECT_EQ(w[0].src[1], 3);
  EXPECT_EQ(w[1].active, 0x0000ffffu);
  EXPECT_EQ(w[1].op, Opcode::kFFma);
  EXPECT_TRUE(IsExit(w[2].op));
}

TEST(AccelSimImport, AddressModeList) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 2\n"
                       "0008 00000003 1 R5 LDG.E 1 R4 4 0 0x1000 0x2000\n"
                       "0010 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  const TraceInstr ld = k->variant(0).warps[0].Decode(0);
  EXPECT_EQ(ld.op, Opcode::kLdGlobal);
  ASSERT_EQ(ld.addrs.size(), 2u);  // two active lanes
  EXPECT_EQ(ld.addrs[0], 0x1000u);
  EXPECT_EQ(ld.addrs[1], 0x2000u);
}

TEST(AccelSimImport, AddressModeBaseStride) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 2\n"
                       "0008 ffffffff 1 R5 LDG.E 1 R4 4 1 0x1000 4\n"
                       "0010 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  const TraceInstr ld = k->variant(0).warps[0].Decode(0);
  ASSERT_EQ(ld.addrs.size(), 32u);
  EXPECT_EQ(ld.addrs[0], 0x1000u);
  EXPECT_EQ(ld.addrs[31], 0x1000u + 31 * 4);
}

TEST(AccelSimImport, AddressModeBaseDeltas) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 2\n"
                       "0008 00000007 1 R5 LDG.E 1 R4 4 2 0x2000 16 -8\n"
                       "0010 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  const TraceInstr ld = k->variant(0).warps[0].Decode(0);
  ASSERT_EQ(ld.addrs.size(), 3u);
  EXPECT_EQ(ld.addrs[0], 0x2000u);
  EXPECT_EQ(ld.addrs[1], 0x2010u);
  EXPECT_EQ(ld.addrs[2], 0x2008u);
}

TEST(AccelSimImport, MissingExitIsAppended) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 1\n"
                       "0008 ffffffff 1 R4 IADD 1 R2 0\n"
                       "warp = 1\n"
                       "insts = 0\n"
                       "#END_TB\n");
  EXPECT_TRUE(IsExit(k->variant(0).warps[0].back().op));
  EXPECT_TRUE(IsExit(k->variant(0).warps[1].back().op));
  EXPECT_NO_THROW(k->ValidateTrace());
}

TEST(AccelSimImport, RzMapsToNoDependency) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\n"
                       "insts = 2\n"
                       "0008 ffffffff 1 R4 IADD 2 RZ R2 0\n"
                       "0010 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\n"
                       "insts = 1\n"
                       "0100 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  EXPECT_EQ(k->variant(0).warps[0][0].src[0], kNoReg);
  EXPECT_EQ(k->variant(0).warps[0][0].src[1], 2);
}

TEST(AccelSimImport, SassMapping) {
  EXPECT_EQ(MapSassOpcode("FFMA"), Opcode::kFFma);
  EXPECT_EQ(MapSassOpcode("IMAD"), Opcode::kIMad);
  EXPECT_EQ(MapSassOpcode("MUFU"), Opcode::kRsqrt);
  EXPECT_EQ(MapSassOpcode("HMMA"), Opcode::kHmma);
  EXPECT_EQ(MapSassOpcode("LDG"), Opcode::kLdGlobal);
  EXPECT_EQ(MapSassOpcode("BAR"), Opcode::kBarSync);
  EXPECT_EQ(MapSassOpcode("TOTALLYNEW"), Opcode::kIAdd);  // conservative
}

TEST(AccelSimImport, ErrorsCarryLineNumbers) {
  try {
    Parse(std::string(kHeader) +
          "#BEGIN_TB\n"
          "thread block = 0,0,0\n"
          "warp = 0\n"
          "insts = 1\n"
          "0008 00000000 0 EXIT 0 0\n"  // empty mask
          "#END_TB\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 11"), std::string::npos);
  }
}

TEST(AccelSimImport, RejectsMissingHeaders) {
  EXPECT_THROW(Parse("-kernel name = x\n#BEGIN_TB\n"), SimError);
}

TEST(AccelSimImport, MultipleThreadBlocksBecomeVariants) {
  const auto k = Parse(std::string(kHeader) +
                       "#BEGIN_TB\n"
                       "thread block = 0,0,0\n"
                       "warp = 0\ninsts = 1\n0008 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\ninsts = 1\n0008 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n"
                       "#BEGIN_TB\n"
                       "thread block = 1,0,0\n"
                       "warp = 0\ninsts = 2\n"
                       "0008 ffffffff 1 R4 IADD 1 R2 0\n"
                       "0010 ffffffff 0 EXIT 0 0\n"
                       "warp = 1\ninsts = 1\n0008 ffffffff 0 EXIT 0 0\n"
                       "#END_TB\n");
  EXPECT_EQ(k->num_variants(), 2u);
  EXPECT_EQ(k->variant(1).warps[0].size(), 2u);
}

}  // namespace
}  // namespace swiftsim
