#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Metrics, RegisterAndSnapshot) {
  MetricsGatherer g;
  std::uint64_t a = 1, b = 2;
  g.Register("sm0", "issued", &a);
  g.Register("sm1", "issued", &b);
  a = 10;  // live variable: snapshot sees current value
  const auto snap = g.Snapshot();
  EXPECT_EQ(snap.at("sm0.issued"), 10u);
  EXPECT_EQ(snap.at("sm1.issued"), 2u);
  EXPECT_EQ(g.size(), 2u);
}

TEST(Metrics, LambdaSource) {
  MetricsGatherer g;
  int calls = 0;
  g.Register("mod", "computed", [&] {
    ++calls;
    return std::uint64_t{42};
  });
  EXPECT_EQ(g.Read("mod.computed"), 42u);
  EXPECT_EQ(calls, 1);
}

TEST(Metrics, DuplicateRegistrationThrows) {
  MetricsGatherer g;
  std::uint64_t a = 0;
  g.Register("m", "c", &a);
  EXPECT_THROW(g.Register("m", "c", &a), SimError);
}

TEST(Metrics, ReadUnknownThrows) {
  MetricsGatherer g;
  EXPECT_THROW(g.Read("nope.counter"), SimError);
}

TEST(Metrics, SumAcrossModules) {
  MetricsGatherer g;
  std::uint64_t a = 3, b = 4, c = 100;
  g.Register("sm0.l1", "hits", &a);
  g.Register("sm1.l1", "hits", &b);
  g.Register("l2.0", "hits", &c);
  EXPECT_EQ(g.SumAcross("sm", "hits"), 7u);
  EXPECT_EQ(g.SumAcross("l2", "hits"), 100u);
  EXPECT_EQ(g.SumAcross("dram", "hits"), 0u);
}

}  // namespace
}  // namespace swiftsim
