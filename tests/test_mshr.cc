#include "mem/mshr.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

MemRequest Load(Addr line, std::uint32_t sectors, std::uint64_t id) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = sectors;
  r.type = MemAccessType::kLoad;
  r.id = id;
  return r;
}

TEST(Mshr, AllocateAndFillWakesWaiter) {
  Mshr mshr(4, 2);
  EXPECT_TRUE(mshr.CanAllocate(0x1000));
  mshr.Allocate(0x1000, Load(0x1000, 0x3, 1));
  EXPECT_TRUE(mshr.HasEntry(0x1000));
  EXPECT_EQ(mshr.RequestedSectors(0x1000), 0x3u);
  const auto waiters = mshr.Fill(0x1000, 0x3);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].id, 1u);
  EXPECT_FALSE(mshr.HasEntry(0x1000));
}

TEST(Mshr, EntryLimit) {
  Mshr mshr(2, 4);
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 1));
  mshr.Allocate(0x2000, Load(0x2000, 0x1, 2));
  EXPECT_TRUE(mshr.full());
  EXPECT_FALSE(mshr.CanAllocate(0x3000));
  // Existing lines can still merge.
  EXPECT_TRUE(mshr.CanAllocate(0x1000));
}

TEST(Mshr, MergeLimit) {
  Mshr mshr(4, 2);
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 1));
  mshr.Allocate(0x1000, Load(0x1000, 0x2, 2));
  EXPECT_FALSE(mshr.CanAllocate(0x1000));  // merge limit 2 reached
  EXPECT_TRUE(mshr.CanAllocate(0x2000));
}

TEST(Mshr, PartialFillWakesOnlySatisfiedWaiters) {
  Mshr mshr(4, 4);
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 1));  // wants sector 0
  mshr.Allocate(0x1000, Load(0x1000, 0x8, 2));  // wants sector 3
  mshr.AddRequestedSectors(0x1000, 0x8);
  auto first = mshr.Fill(0x1000, 0x1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 1u);
  EXPECT_TRUE(mshr.HasEntry(0x1000));  // waiter 2 still pending
  auto second = mshr.Fill(0x1000, 0x8);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 2u);
  EXPECT_FALSE(mshr.HasEntry(0x1000));
}

TEST(Mshr, StoresCountAgainstMergeButNeverWake) {
  Mshr mshr(4, 2);
  MemRequest store = Load(0x1000, 0x1, 0);
  store.type = MemAccessType::kStore;
  mshr.Allocate(0x1000, store);
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 7));
  EXPECT_FALSE(mshr.CanAllocate(0x1000));
  const auto waiters = mshr.Fill(0x1000, 0x1);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].id, 7u);
}

TEST(Mshr, FillOfUnknownLineReturnsEmpty) {
  Mshr mshr(4, 2);
  EXPECT_TRUE(mshr.Fill(0xdead00, 0xF).empty());
}

TEST(Mshr, WaiterNeedingBothSectorBatches) {
  Mshr mshr(4, 4);
  mshr.Allocate(0x1000, Load(0x1000, 0x3, 1));  // wants sectors 0 and 1
  EXPECT_TRUE(mshr.Fill(0x1000, 0x1).empty());  // only sector 0 arrived
  const auto waiters = mshr.Fill(0x1000, 0x2);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].id, 1u);
  EXPECT_FALSE(mshr.HasEntry(0x1000));
}

TEST(Mshr, SizeTracksEntries) {
  Mshr mshr(8, 2);
  EXPECT_EQ(mshr.size(), 0u);
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 1));
  mshr.Allocate(0x2000, Load(0x2000, 0x1, 2));
  mshr.Allocate(0x1000, Load(0x1000, 0x1, 3));  // merge, same entry
  EXPECT_EQ(mshr.size(), 2u);
}

}  // namespace
}  // namespace swiftsim
