// Malformed-input hardening (DESIGN.md §11): every external input surface
// — the native trace format, the Accel-Sim importer, and the INI config
// layer — must reject truncated, garbage, and overflowing inputs with a
// typed SimError that names the offending line or key. No case may crash,
// allocate unboundedly off a file-supplied count, or hang.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "config/gpu_config.h"
#include "config/ini.h"
#include "swiftsim/service.h"
#include "trace/accelsim_import.h"
#include "trace/trace_io.h"

namespace swiftsim {
namespace {

struct BadInput {
  const char* label;
  const char* text;
  const char* expect_in_what;  // "" = just require SimError
};

constexpr const char* kGoodKernelHeader =
    "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
    "regs=16 variants=1\n";

const std::vector<BadInput>& BadKernelTraces() {
  static const std::vector<BadInput> cases = {
      {"empty", "", ""},
      {"garbage_header", "hello world this is not a trace\n", ""},
      {"truncated_after_header",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n",
       ""},
      {"truncated_after_variant",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n",
       ""},
      {"truncated_mid_warp",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=3\n"
       "i 0 IADD d=1 s=0 m=ffffffff\n",
       ""},
      {"uint_overflow",
       "kernel k id=99999999999999999999999 ctas=1 warps_per_cta=1 "
       "threads_per_cta=32 smem=0 regs=16 variants=1\n",
       "id"},
      {"negative_count",
       "kernel k id=0 ctas=-1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n",
       ""},
      {"huge_warp_count",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=999999999999\n",
       "limit"},
      {"garbage_instruction",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=1\n"
       "this is not an instruction\n",
       "line 4"},
  };
  return cases;
}

TEST(MalformedTrace, EveryCaseThrowsSimError) {
  for (const BadInput& c : BadKernelTraces()) {
    std::stringstream buf(c.text);
    try {
      ReadKernelTrace(buf);
      FAIL() << c.label << ": expected SimError";
    } catch (const SimError& e) {
      if (c.expect_in_what[0] != '\0') {
        EXPECT_NE(std::string(e.what()).find(c.expect_in_what),
                  std::string::npos)
            << c.label << ": " << e.what();
      }
    } catch (...) {
      FAIL() << c.label << ": threw something other than SimError";
    }
  }
}

TEST(MalformedTrace, ApplicationHeaderAndTruncation) {
  {
    std::stringstream buf("not an application header\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
  {
    // Promises two kernels, delivers one.
    std::stringstream buf(std::string("application foo kernels=2\n") +
                          kGoodKernelHeader +
                          "variant 0\n"
                          "warp 0 n=1\n"
                          "i 0 EXIT d=- s=- m=ffffffff\n"
                          "end_warp\n"
                          "end_variant\n"
                          "end_kernel\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
  {
    std::stringstream buf("application foo kernels=99999999999999999999\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
}

TEST(MalformedTrace, MissingFileNamesThePath) {
  try {
    ReadKernelTraceFile("/nonexistent/never/there.sstrace");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("never/there"), std::string::npos)
        << e.what();
  }
}

constexpr const char* kAccelHeader =
    "-kernel name = vecadd\n"
    "-kernel id = 3\n"
    "-grid dim = (4,2,1)\n"
    "-block dim = (64,1,1)\n"
    "-shmem = 1024\n"
    "-nregs = 24\n";

const std::vector<BadInput>& BadAccelSimTraces() {
  static const std::vector<BadInput> cases = {
      {"empty", "", ""},
      {"garbage", "??? definitely not an accel-sim trace ???\n", ""},
      {"grid_dim_overflow",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (4294967295,4294967295,4294967295)\n"
       "-block dim = (64,1,1)\n"
       "-shmem = 0\n"
       "-nregs = 16\n"
       "#BEGIN_TB\n",
       "overflow"},
      {"implausible_block_dim",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (1,1,1)\n"
       "-block dim = (70000,1,1)\n"
       "-shmem = 0\n"
       "-nregs = 16\n"
       "#BEGIN_TB\n",
       ""},
      {"malformed_dim3",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (banana)\n",
       ""},
  };
  return cases;
}

TEST(MalformedAccelSim, EveryCaseThrowsSimError) {
  for (const BadInput& c : BadAccelSimTraces()) {
    std::stringstream buf(c.text);
    try {
      ImportAccelSimKernel(buf);
      FAIL() << c.label << ": expected SimError";
    } catch (const SimError& e) {
      if (c.expect_in_what[0] != '\0') {
        EXPECT_NE(std::string(e.what()).find(c.expect_in_what),
                  std::string::npos)
            << c.label << ": " << e.what();
      }
    } catch (...) {
      FAIL() << c.label << ": threw something other than SimError";
    }
  }
}

TEST(MalformedAccelSim, HugeInstCountRejectedBeforeAllocation) {
  // A hostile `insts =` count must be rejected up front, not handed to
  // vector::reserve.
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 999999999999\n");
  EXPECT_THROW(ImportAccelSimKernel(buf), SimError);
}

TEST(MalformedAccelSim, TruncatedMidWarpThrows) {
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 2\n"
                        "0100 ffffffff 0 EXIT 0 0\n");
  EXPECT_THROW(ImportAccelSimKernel(buf), SimError);
}

TEST(MalformedAccelSim, GarbageInstructionNamesTheLine) {
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 1\n"
                        "not an instruction at all\n");
  try {
    ImportAccelSimKernel(buf);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(MalformedIni, StructuralErrorsNameTheLine) {
  try {
    IniFile::ParseString("[unterminated\nkey = 1\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(IniFile::ParseString("no equals sign here\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("= value without key\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("[]\n"), SimError);
}

TEST(MalformedIni, TypedGettersRejectGarbageValues) {
  const IniFile ini = IniFile::ParseString(
      "count = banana\n"
      "ratio = 1.2.3\n"
      "flag = maybe\n"
      "big = 99999999999999999999999\n");
  EXPECT_THROW(ini.GetUint("count"), SimError);
  EXPECT_THROW(ini.GetDouble("ratio"), SimError);
  EXPECT_THROW(ini.GetBool("flag"), SimError);
  EXPECT_THROW(ini.GetUint("big"), SimError);
  EXPECT_THROW(ini.GetUint("missing"), SimError);
}

TEST(MalformedIni, GpuConfigRejectsBadValues) {
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[gpu]\nnum_sms = banana\n")),
      SimError);
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[gpu]\nnum_sms = 0\n")),
      SimError);
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[watchdog]\nwall_seconds = "
                                              "-5\n")),
      SimError);
  EXPECT_THROW(GpuConfig::FromIni(IniFile::ParseFile("/nonexistent/gpu.ini")),
               SimError);
}

// ---------------------------------------------------------------------------
// Compact on-disk trace cache (DESIGN.md §14): truncated files, corrupted
// headers, stale versions and mismatched keys must raise TraceCacheError
// naming the path; malformed columns (out-of-range offsets, oversized lane
// counts) must raise SimError — never crash or allocate off a bad count.

Application SmallCacheApp() {
  WarpTrace w;
  w.EmitScalar(0x10, Opcode::kIAdd, 4, {1, 2, kNoReg}, kFullMask);
  LaneAddrs addrs;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    addrs.push_back(0x1000 + lane * 4);
  }
  w.EmitMem(0x18, Opcode::kLdGlobal, 5, {4, kNoReg, kNoReg}, kFullMask,
            addrs);
  w.EmitScalar(0x20, Opcode::kExit, kNoReg, {kNoReg, kNoReg, kNoReg},
               kFullMask);
  KernelInfo ki;
  ki.name = "cache_k";
  ki.num_ctas = 2;
  ki.warps_per_cta = 1;
  ki.threads_per_cta = 32;
  CtaTrace cta;
  cta.warps.push_back(std::move(w));
  Application app;
  app.name = "cache_app";
  app.kernels.push_back(
      std::make_shared<KernelTrace>(ki, std::vector<CtaTrace>{cta}));
  return app;
}

std::string WriteCacheFixture(const Fingerprint& key) {
  const std::string path =
      testing::TempDir() + "malformed_cache_fixture.sstc";
  WriteCompactApplication(SmallCacheApp(), key, path);
  return path;
}

TEST(MalformedCompactCache, TruncationAtEveryPrefixThrows) {
  const Fingerprint key{0x1111, 0x2222};
  const std::string path = WriteCacheFixture(key);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 32u);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{16},
                           bytes.size() / 2, bytes.size() - 1}) {
    const std::string trunc_path =
        testing::TempDir() + "malformed_cache_trunc.sstc";
    std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(ReadCompactApplication(trunc_path, key), TraceCacheError)
        << "prefix of " << keep << " bytes";
  }
}

TEST(MalformedCompactCache, BadMagicAndVersionThrow) {
  const Fingerprint key{0x1111, 0x2222};
  const std::string path = WriteCacheFixture(key);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto rewrite = [&](std::size_t at, char c) {
    std::string copy = bytes;
    copy[at] = c;
    const std::string p = testing::TempDir() + "malformed_cache_mut.sstc";
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(copy.data(), static_cast<std::streamsize>(copy.size()));
    return p;
  };
  // Byte 0 is the 'S' of the "SSTC" magic; byte 4 the version LSB.
  EXPECT_THROW(ReadCompactApplication(rewrite(0, 'X'), key),
               TraceCacheError);
  EXPECT_THROW(ReadCompactApplication(rewrite(4, '\x7f'), key),
               TraceCacheError);
}

TEST(MalformedCompactCache, KeyMismatchThrowsAndNamesThePath) {
  const Fingerprint key{0x1111, 0x2222};
  const std::string path = WriteCacheFixture(key);
  const Fingerprint other{0x3333, 0x4444};
  try {
    ReadCompactApplication(path, other);
    FAIL() << "expected TraceCacheError";
  } catch (const TraceCacheError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(MalformedCompactCache, MissingFileThrowsTraceCacheError) {
  EXPECT_THROW(
      ReadCompactApplication("/nonexistent/trace.sstc", Fingerprint{}),
      TraceCacheError);
}

TEST(MalformedColumns, OutOfRangeOffsetsAndCountsThrow) {
  WarpTrace good;
  LaneAddrs addrs;
  addrs.push_back(0x100);
  good.EmitMem(0x10, Opcode::kLdGlobal, 5, {kNoReg, kNoReg, kNoReg}, 0x1,
               addrs);
  auto records = good.records();
  auto offsets = good.addr_offsets();
  auto pool = good.addr_pool();

  // Offset past the end of the pool.
  EXPECT_THROW(WarpTrace::FromColumns(
                   records, {static_cast<std::uint32_t>(pool.size() + 8)},
                   pool),
               SimError);
  // Offset table disagrees with the flags column.
  EXPECT_THROW(WarpTrace::FromColumns(records, {}, pool), SimError);
  // Lane count beyond kWarpSize: varint(33) followed by no deltas.
  EXPECT_THROW(WarpTrace::FromColumns(records, {0}, {33}), SimError);
  // Truncated pool entry: count promises deltas the pool does not hold.
  EXPECT_THROW(WarpTrace::FromColumns(records, {0}, {2, 0x80}), SimError);
}

// ---------------------------------------------------------------------------
// Service protocol (DESIGN.md §15): every malformed NDJSON request line a
// client can send must come back as a typed error response — never an
// exception out of the parse layer, never a dead daemon.

struct BadRequestLine {
  const char* label;
  const char* line;
  service::ErrorCode expect;
  const char* expect_in_message;  // "" = code check only
};

const std::vector<BadRequestLine>& BadRequestLines() {
  using service::ErrorCode;
  static const std::vector<BadRequestLine> cases = {
      // Framing: lines that are not one well-formed JSON object.
      {"empty_object_braces_only", "{", ErrorCode::kBadJson, ""},
      {"garbage_text", "simulate BFS please", ErrorCode::kBadJson, ""},
      {"truncated_object", R"({"op":"simulate","workload":)",
       ErrorCode::kBadJson, ""},
      {"array_not_object", R"(["simulate","BFS"])", ErrorCode::kBadJson,
       "object"},
      {"scalar_not_object", "42", ErrorCode::kBadJson, "object"},
      {"two_objects_one_line", R"({"op":"ping"}{"op":"ping"})",
       ErrorCode::kBadJson, ""},
      {"deep_nesting_bomb",
       R"({"op":[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]})",
       ErrorCode::kBadJson, ""},
      // Field validation.
      {"unknown_op", R"({"op":"simulat","workload":"BFS"})",
       ErrorCode::kUnknownOp, "simulat"},
      {"unknown_field", R"({"op":"simulate","workload":"BFS","wat":1})",
       ErrorCode::kBadRequest, "wat"},
      {"missing_workload", R"({"op":"simulate","id":"x"})",
       ErrorCode::kBadRequest, "workload"},
      {"wrong_type_scale",
       R"({"op":"simulate","workload":"BFS","scale":"big"})",
       ErrorCode::kBadRequest, ""},
      {"negative_scale", R"({"op":"simulate","workload":"BFS","scale":-1})",
       ErrorCode::kBadRequest, ""},
      {"zero_iterations",
       R"({"op":"simulate","workload":"BFS","iterations":0})",
       ErrorCode::kBadRequest, ""},
      {"bad_level", R"({"op":"simulate","workload":"BFS","level":"turbo"})",
       ErrorCode::kBadRequest, "turbo"},
      // A 21-digit literal overflows uint64 inside the JSON number lexer
      // itself, so it surfaces as a framing error, not a field error.
      {"seed_overflow",
       R"({"op":"simulate","workload":"BFS","seed":99999999999999999999})",
       ErrorCode::kBadJson, "out of range"},
      // Oversized jobs: admission limits, named in the message.
      {"oversized_scale", R"({"op":"simulate","workload":"BFS","scale":50})",
       ErrorCode::kOversized, "scale"},
      {"oversized_iterations",
       R"({"op":"simulate","workload":"BFS","iterations":1000000})",
       ErrorCode::kOversized, "iterations"},
  };
  return cases;
}

TEST(MalformedServiceRequest, EveryCaseYieldsTypedErrorNotThrow) {
  for (const BadRequestLine& c : BadRequestLines()) {
    service::Request req;
    service::ErrorCode code;
    std::string message, id;
    bool ok = false;
    EXPECT_NO_THROW(
        ok = service::ParseRequestLine(c.line, service::Limits{}, &req, &code,
                                       &message, &id))
        << c.label;
    EXPECT_FALSE(ok) << c.label << " parsed successfully";
    EXPECT_EQ(code, c.expect)
        << c.label << ": got " << service::ToString(code) << " — " << message;
    if (*c.expect_in_message != '\0') {
      EXPECT_NE(message.find(c.expect_in_message), std::string::npos)
          << c.label << ": message '" << message << "' does not name '"
          << c.expect_in_message << "'";
    }
  }
}

TEST(MalformedServiceRequest, OversizedLineRejectedBeforeParsing) {
  service::Limits limits;
  limits.max_line_bytes = 128;
  std::string line = R"({"op":"simulate","workload":")";
  line.append(4096, 'A');
  line += R"("})";
  service::Request req;
  service::ErrorCode code;
  std::string message, id;
  EXPECT_FALSE(
      service::ParseRequestLine(line, limits, &req, &code, &message, &id));
  EXPECT_EQ(code, service::ErrorCode::kOversized);
}

TEST(MalformedServiceRequest, DaemonSurvivesFullMalformedStream) {
  // The whole table streamed at a live service, interleaved with jobs the
  // registry and config layers must reject (unknown workload, unknown INI
  // key, unknown preset) — every line gets a typed error response and the
  // daemon answers a healthy job afterwards.
  service::ServiceOptions opt;
  opt.threads = 1;
  service::SimulationService svc(opt);

  std::ostringstream stream;
  for (const BadRequestLine& c : BadRequestLines()) stream << c.line << "\n";
  stream << R"({"op":"simulate","id":"ghost","workload":"NO_SUCH"})" << "\n";
  stream << R"({"op":"simulate","id":"badkey","workload":"NW",)"
         << R"("config":"[gpu]\nno_such_knob = 1\n"})" << "\n";
  stream << R"({"op":"simulate","id":"badpreset","workload":"NW",)"
         << R"("preset":"rtx9090"})" << "\n";
  stream << R"({"op":"simulate","id":"healthy","workload":"NW",)"
         << R"("scale":0.05})" << "\n";
  stream << R"({"op":"shutdown","id":"bye"})" << "\n";

  std::istringstream in(stream.str());
  std::ostringstream out;
  service::ServeResult res = service::ServeLines(in, out, svc);
  EXPECT_TRUE(res.shutdown);

  std::map<std::string, std::string> error_by_id;
  bool healthy_ok = false;
  std::size_t responses = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    ++responses;
    JsonValue v = ParseJson(line);  // every response is valid JSON
    const JsonValue* id = v.Find("id");
    const JsonValue* err = v.Find("error");
    if (id != nullptr && err != nullptr) error_by_id[id->AsString()] = err->AsString();
    if (id != nullptr && id->AsString() == "healthy") {
      healthy_ok = v.Find("ok")->AsBool();
    }
  }
  // One response per request line: the table, 3 rejected jobs, the
  // healthy job, the shutdown acknowledgement.
  EXPECT_EQ(responses, BadRequestLines().size() + 5);
  EXPECT_EQ(error_by_id["ghost"], "unknown_workload");
  EXPECT_EQ(error_by_id["badkey"], "bad_config");
  EXPECT_EQ(error_by_id["badpreset"], "bad_config");
  EXPECT_TRUE(healthy_ok) << "daemon did not serve a healthy job after the "
                             "malformed stream";
}

}  // namespace
}  // namespace swiftsim
