// Malformed-input hardening (DESIGN.md §11): every external input surface
// — the native trace format, the Accel-Sim importer, and the INI config
// layer — must reject truncated, garbage, and overflowing inputs with a
// typed SimError that names the offending line or key. No case may crash,
// allocate unboundedly off a file-supplied count, or hang.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "config/gpu_config.h"
#include "config/ini.h"
#include "trace/accelsim_import.h"
#include "trace/trace_io.h"

namespace swiftsim {
namespace {

struct BadInput {
  const char* label;
  const char* text;
  const char* expect_in_what;  // "" = just require SimError
};

constexpr const char* kGoodKernelHeader =
    "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
    "regs=16 variants=1\n";

const std::vector<BadInput>& BadKernelTraces() {
  static const std::vector<BadInput> cases = {
      {"empty", "", ""},
      {"garbage_header", "hello world this is not a trace\n", ""},
      {"truncated_after_header",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n",
       ""},
      {"truncated_after_variant",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n",
       ""},
      {"truncated_mid_warp",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=3\n"
       "i 0 IADD d=1 s=0 m=ffffffff\n",
       ""},
      {"uint_overflow",
       "kernel k id=99999999999999999999999 ctas=1 warps_per_cta=1 "
       "threads_per_cta=32 smem=0 regs=16 variants=1\n",
       "id"},
      {"negative_count",
       "kernel k id=0 ctas=-1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n",
       ""},
      {"huge_warp_count",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=999999999999\n",
       "limit"},
      {"garbage_instruction",
       "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
       "regs=16 variants=1\n"
       "variant 0\n"
       "warp 0 n=1\n"
       "this is not an instruction\n",
       "line 4"},
  };
  return cases;
}

TEST(MalformedTrace, EveryCaseThrowsSimError) {
  for (const BadInput& c : BadKernelTraces()) {
    std::stringstream buf(c.text);
    try {
      ReadKernelTrace(buf);
      FAIL() << c.label << ": expected SimError";
    } catch (const SimError& e) {
      if (c.expect_in_what[0] != '\0') {
        EXPECT_NE(std::string(e.what()).find(c.expect_in_what),
                  std::string::npos)
            << c.label << ": " << e.what();
      }
    } catch (...) {
      FAIL() << c.label << ": threw something other than SimError";
    }
  }
}

TEST(MalformedTrace, ApplicationHeaderAndTruncation) {
  {
    std::stringstream buf("not an application header\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
  {
    // Promises two kernels, delivers one.
    std::stringstream buf(std::string("application foo kernels=2\n") +
                          kGoodKernelHeader +
                          "variant 0\n"
                          "warp 0 n=1\n"
                          "i 0 EXIT d=- s=- m=ffffffff\n"
                          "end_warp\n"
                          "end_variant\n"
                          "end_kernel\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
  {
    std::stringstream buf("application foo kernels=99999999999999999999\n");
    EXPECT_THROW(ReadApplication(buf), SimError);
  }
}

TEST(MalformedTrace, MissingFileNamesThePath) {
  try {
    ReadKernelTraceFile("/nonexistent/never/there.sstrace");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("never/there"), std::string::npos)
        << e.what();
  }
}

constexpr const char* kAccelHeader =
    "-kernel name = vecadd\n"
    "-kernel id = 3\n"
    "-grid dim = (4,2,1)\n"
    "-block dim = (64,1,1)\n"
    "-shmem = 1024\n"
    "-nregs = 24\n";

const std::vector<BadInput>& BadAccelSimTraces() {
  static const std::vector<BadInput> cases = {
      {"empty", "", ""},
      {"garbage", "??? definitely not an accel-sim trace ???\n", ""},
      {"grid_dim_overflow",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (4294967295,4294967295,4294967295)\n"
       "-block dim = (64,1,1)\n"
       "-shmem = 0\n"
       "-nregs = 16\n"
       "#BEGIN_TB\n",
       "overflow"},
      {"implausible_block_dim",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (1,1,1)\n"
       "-block dim = (70000,1,1)\n"
       "-shmem = 0\n"
       "-nregs = 16\n"
       "#BEGIN_TB\n",
       ""},
      {"malformed_dim3",
       "-kernel name = k\n"
       "-kernel id = 1\n"
       "-grid dim = (banana)\n",
       ""},
  };
  return cases;
}

TEST(MalformedAccelSim, EveryCaseThrowsSimError) {
  for (const BadInput& c : BadAccelSimTraces()) {
    std::stringstream buf(c.text);
    try {
      ImportAccelSimKernel(buf);
      FAIL() << c.label << ": expected SimError";
    } catch (const SimError& e) {
      if (c.expect_in_what[0] != '\0') {
        EXPECT_NE(std::string(e.what()).find(c.expect_in_what),
                  std::string::npos)
            << c.label << ": " << e.what();
      }
    } catch (...) {
      FAIL() << c.label << ": threw something other than SimError";
    }
  }
}

TEST(MalformedAccelSim, HugeInstCountRejectedBeforeAllocation) {
  // A hostile `insts =` count must be rejected up front, not handed to
  // vector::reserve.
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 999999999999\n");
  EXPECT_THROW(ImportAccelSimKernel(buf), SimError);
}

TEST(MalformedAccelSim, TruncatedMidWarpThrows) {
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 2\n"
                        "0100 ffffffff 0 EXIT 0 0\n");
  EXPECT_THROW(ImportAccelSimKernel(buf), SimError);
}

TEST(MalformedAccelSim, GarbageInstructionNamesTheLine) {
  std::stringstream buf(std::string(kAccelHeader) +
                        "#BEGIN_TB\n"
                        "thread block = 0,0,0\n"
                        "warp = 0\n"
                        "insts = 1\n"
                        "not an instruction at all\n");
  try {
    ImportAccelSimKernel(buf);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(MalformedIni, StructuralErrorsNameTheLine) {
  try {
    IniFile::ParseString("[unterminated\nkey = 1\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(IniFile::ParseString("no equals sign here\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("= value without key\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("[]\n"), SimError);
}

TEST(MalformedIni, TypedGettersRejectGarbageValues) {
  const IniFile ini = IniFile::ParseString(
      "count = banana\n"
      "ratio = 1.2.3\n"
      "flag = maybe\n"
      "big = 99999999999999999999999\n");
  EXPECT_THROW(ini.GetUint("count"), SimError);
  EXPECT_THROW(ini.GetDouble("ratio"), SimError);
  EXPECT_THROW(ini.GetBool("flag"), SimError);
  EXPECT_THROW(ini.GetUint("big"), SimError);
  EXPECT_THROW(ini.GetUint("missing"), SimError);
}

TEST(MalformedIni, GpuConfigRejectsBadValues) {
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[gpu]\nnum_sms = banana\n")),
      SimError);
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[gpu]\nnum_sms = 0\n")),
      SimError);
  EXPECT_THROW(
      GpuConfig::FromIni(IniFile::ParseString("[watchdog]\nwall_seconds = "
                                              "-5\n")),
      SimError);
  EXPECT_THROW(GpuConfig::FromIni(IniFile::ParseFile("/nonexistent/gpu.ini")),
               SimError);
}

}  // namespace
}  // namespace swiftsim
