#include "core/cta_allocator.h"

#include <gtest/gtest.h>

#include "config/presets.h"

namespace swiftsim {
namespace {

KernelInfo Kernel(std::uint32_t warps, std::uint32_t smem = 0,
                  std::uint32_t regs = 32) {
  KernelInfo info;
  info.name = "k";
  info.num_ctas = 100;
  info.warps_per_cta = warps;
  info.threads_per_cta = warps * kWarpSize;
  info.smem_bytes_per_cta = smem;
  info.regs_per_thread = regs;
  return info;
}

TEST(CtaAllocator, WarpSlotsLimitOccupancy) {
  const GpuConfig gpu = Rtx2080TiConfig();  // 32 warps/SM, 16 CTA slots
  CtaAllocator alloc(gpu);
  const KernelInfo k = Kernel(8);
  EXPECT_EQ(alloc.MaxConcurrent(k), 4u);  // 32 / 8
  std::vector<unsigned> slots;
  while (alloc.CanAllocate(k)) slots.push_back(alloc.Allocate(k));
  EXPECT_EQ(slots.size(), 4u);
  EXPECT_EQ(alloc.used_warps(), 32u);
  alloc.Release(slots[0], k);
  EXPECT_TRUE(alloc.CanAllocate(k));
}

TEST(CtaAllocator, SharedMemoryLimits) {
  const GpuConfig gpu = Rtx2080TiConfig();  // 64KB smem
  CtaAllocator alloc(gpu);
  const KernelInfo k = Kernel(2, 24 * 1024);
  EXPECT_EQ(alloc.MaxConcurrent(k), 2u);  // smem-bound: 64/24
}

TEST(CtaAllocator, RegisterFileLimits) {
  const GpuConfig gpu = Rtx2080TiConfig();  // 64K regs
  CtaAllocator alloc(gpu);
  // 4 warps x 128 threads x 200 regs = 25600 regs per CTA -> 2 fit.
  const KernelInfo k = Kernel(4, 0, 200);
  EXPECT_EQ(alloc.MaxConcurrent(k), 2u);
}

TEST(CtaAllocator, CtaSlotLimit) {
  const GpuConfig gpu = Rtx2080TiConfig();  // 16 CTA slots
  CtaAllocator alloc(gpu);
  const KernelInfo k = Kernel(1);  // tiny CTAs: slot-bound at 16
  EXPECT_EQ(alloc.MaxConcurrent(k), 16u);
  unsigned n = 0;
  while (alloc.CanAllocate(k)) {
    alloc.Allocate(k);
    ++n;
  }
  EXPECT_EQ(n, 16u);
}

TEST(CtaAllocator, InfeasibleKernels) {
  const GpuConfig gpu = Rtx2080TiConfig();
  CtaAllocator alloc(gpu);
  EXPECT_FALSE(alloc.Feasible(Kernel(64)));          // too many warps
  EXPECT_FALSE(alloc.Feasible(Kernel(2, 1 << 20)));  // too much smem
  EXPECT_EQ(alloc.MaxConcurrent(Kernel(64)), 0u);
  EXPECT_TRUE(alloc.Feasible(Kernel(32)));
}

TEST(CtaAllocator, SlotsAreRecycled) {
  const GpuConfig gpu = Rtx2080TiConfig();
  CtaAllocator alloc(gpu);
  const KernelInfo k = Kernel(8);
  const unsigned a = alloc.Allocate(k);
  alloc.Release(a, k);
  const unsigned b = alloc.Allocate(k);
  EXPECT_EQ(a, b);  // first free slot reused
  EXPECT_EQ(alloc.resident_ctas(), 1u);
}

TEST(CtaAllocator, MixedResourceAccounting) {
  const GpuConfig gpu = Rtx2080TiConfig();
  CtaAllocator alloc(gpu);
  const KernelInfo big = Kernel(16);
  const KernelInfo small = Kernel(8);
  alloc.Allocate(big);    // 16 warps
  alloc.Allocate(small);  // 24 warps total
  EXPECT_EQ(alloc.used_warps(), 24u);
  EXPECT_TRUE(alloc.CanAllocate(small));   // 32 total fits
  EXPECT_FALSE(alloc.CanAllocate(big));    // 40 would not
}

}  // namespace
}  // namespace swiftsim
