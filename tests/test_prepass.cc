#include "analytical/cache_prepass.h"

#include <gtest/gtest.h>

#include "config/presets.h"
#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

/// One-warp kernel whose loads have fully predictable cache behavior.
std::shared_ptr<KernelTrace> TinyKernel(unsigned repeats) {
  WarpTrace w;
  WarpEmitter e(&w);
  PcAlloc pa(0x100);
  const Pc pc_stream = pa.Next();
  const Pc pc_reuse = pa.Next();
  const Pc pc_exit = pa.Next();
  for (unsigned i = 0; i < repeats; ++i) {
    // Streams a fresh line every iteration: never hits.
    e.Mem(pc_stream, Opcode::kLdGlobal, 8, {2}, kFullMask,
          CoalescedAddrs(0x10000000 + static_cast<Addr>(i) * 4096, 4));
    // Re-reads one fixed line: hits after the first touch.
    e.Mem(pc_reuse, Opcode::kLdGlobal, 9, {2}, kFullMask,
          CoalescedAddrs(0x20000000, 4));
  }
  e.Exit(pc_exit);
  KernelInfo info;
  info.name = "tiny";
  info.id = 0;
  info.num_ctas = 1;
  info.warps_per_cta = 1;
  info.threads_per_cta = 32;
  return std::make_shared<KernelTrace>(info,
                                       std::vector<CtaTrace>{CtaTrace{{w}}});
}

TEST(Prepass, DistinguishesStreamingFromReuse) {
  const GpuConfig cfg = Rtx2080TiConfig();
  Application app;
  app.name = "tiny";
  app.kernels.push_back(TinyKernel(64));
  const MemProfile profile = BuildMemProfile(app, cfg);

  const PcHitRates& stream = profile.Lookup(0, 0x100);
  const PcHitRates& reuse = profile.Lookup(0, 0x108);
  EXPECT_EQ(stream.accesses, 64u);
  EXPECT_EQ(reuse.accesses, 64u);
  EXPECT_LT(stream.r_l1(), 0.05);      // pure streaming never hits
  EXPECT_GT(stream.r_dram(), 0.9);     // streaming goes to DRAM
  // The reused line hits once the initial fill leaves the merge window
  // (the first ~half of the accesses count as in-flight merges).
  EXPECT_NEAR(reuse.r_l1(), 0.5, 0.1);
  EXPECT_GT(reuse.r_l1(), stream.r_l1() + 0.3);
}

TEST(Prepass, UnknownPcFallsBackToKernelAverage) {
  const GpuConfig cfg = Rtx2080TiConfig();
  Application app;
  app.name = "tiny";
  app.kernels.push_back(TinyKernel(64));
  const MemProfile profile = BuildMemProfile(app, cfg);
  const PcHitRates& fallback = profile.Lookup(0, 0xdead);
  EXPECT_GT(fallback.accesses, 0u);  // kernel-average entry
  // Average over one streaming PC (r_l1 ~ 0) and one reusing PC
  // (r_l1 ~ 0.5 after merge-window accounting).
  EXPECT_NEAR(fallback.r_l1(), 0.25, 0.15);
}

TEST(Prepass, UnknownKernelFallsBackToAllDram) {
  MemProfile empty;
  const PcHitRates& r = empty.Lookup(7, 0x100);
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_DOUBLE_EQ(r.r_dram(), 1.0);
}

TEST(Prepass, RatesSumToOne) {
  const GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("BFS", s);
  const MemProfile profile = BuildMemProfile(app, cfg);
  for (const auto& kernel : app.kernels) {
    for (const CompactInstr& ins : kernel->cta(0).warps[0]) {
      if (!IsGlobalMem(ins.op) || !IsLoad(ins.op)) continue;
      const PcHitRates& r = profile.Lookup(kernel->info().id, ins.pc);
      EXPECT_NEAR(r.r_l1() + r.r_l2() + r.r_dram(), 1.0, 1e-9);
      EXPECT_GE(r.r_l1(), 0.0);
      EXPECT_GE(r.r_l2(), 0.0);
      EXPECT_GE(r.r_dram(), -1e-9);
    }
  }
}

TEST(Prepass, MergeWindowTreatsBurstReuseAsMerge) {
  // Two warps read the same fresh line back-to-back: the second access is
  // timing-wise an MSHR merge, not an L1 hit, so r_l1 must stay low.
  WarpTrace w;
  WarpEmitter e(&w);
  for (unsigned i = 0; i < 32; ++i) {
    e.Mem(0x100, Opcode::kLdGlobal, 8, {2}, kFullMask,
          CoalescedAddrs(0x10000000 + static_cast<Addr>(i) * 4096, 4));
  }
  e.Exit(0x108);
  KernelInfo info;
  info.name = "burst";
  info.id = 0;
  info.num_ctas = 1;
  info.warps_per_cta = 2;
  info.threads_per_cta = 64;
  CtaTrace cta;
  cta.warps = {w, w};  // identical address streams
  Application app;
  app.name = "burst";
  app.kernels.push_back(std::make_shared<KernelTrace>(
      info, std::vector<CtaTrace>{cta}));
  const GpuConfig cfg = Rtx2080TiConfig();
  const MemProfile profile = BuildMemProfile(app, cfg);
  const PcHitRates& r = profile.Lookup(0, 0x100);
  EXPECT_EQ(r.accesses, 64u);
  EXPECT_LT(r.r_l1(), 0.05);  // merges, not L1 hits
}

TEST(PcHitRates, DramRemainderNeverNegative) {
  // Regression: with l1_hits + l2_hits == accesses, the two divisions can
  // both round up by an ulp, making the naive 1 - r_l1 - r_l2 negative.
  // Sweep awkward split points and check the clamped remainder.
  bool naive_went_negative = false;
  for (std::uint64_t accesses = 1; accesses <= 200; ++accesses) {
    for (std::uint64_t l1 = 0; l1 <= accesses; ++l1) {
      PcHitRates r;
      r.accesses = accesses;
      r.l1_hits = l1;
      r.l2_hits = accesses - l1;
      const double naive = 1.0 - r.r_l1() - r.r_l2();
      if (naive < 0.0) naive_went_negative = true;
      EXPECT_GE(r.r_dram(), 0.0)
          << accesses << " split " << l1 << "/" << accesses - l1;
      EXPECT_LE(r.r_dram(), 1.0);
    }
  }
  // The sweep must actually exercise the rounding hazard, or this test
  // guards nothing.
  EXPECT_TRUE(naive_went_negative);
}

TEST(Prepass, LaunchMemoizationIsBitIdentical) {
  // Iterative launch pattern: memoized and plain prepasses must produce
  // identical per-PC counts, and the memo must actually replay launches.
  const GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = RepeatLaunches(BuildWorkload("BFS", s), 6);
  MemProfile plain;
  CachePrepass fresh(cfg, /*memoize=*/false);
  for (const auto& kernel : app.kernels) {
    fresh.ProcessKernel(*kernel, &plain);
  }
  MemProfile memoized;
  CachePrepass memo(cfg, /*memoize=*/true);
  for (const auto& kernel : app.kernels) {
    memo.ProcessKernel(*kernel, &memoized);
  }
  EXPECT_EQ(fresh.replayed_launches(), 0u);
  EXPECT_GT(memo.replayed_launches(), 0u);
  for (const auto& kernel : app.kernels) {
    const KernelId id = kernel->info().id;
    for (const CompactInstr& ins : kernel->cta(0).warps[0]) {
      if (!IsGlobalMem(ins.op) || !IsLoad(ins.op)) continue;
      const PcHitRates& a = plain.Lookup(id, ins.pc);
      const PcHitRates& b = memoized.Lookup(id, ins.pc);
      EXPECT_EQ(a.accesses, b.accesses) << ins.pc;
      EXPECT_EQ(a.l1_hits, b.l1_hits) << ins.pc;
      EXPECT_EQ(a.l2_hits, b.l2_hits) << ins.pc;
    }
  }
}

TEST(Prepass, ParallelDedupMatchesPerLaunchShards) {
  // BuildMemProfileParallel computes one cold shard per distinct kernel
  // fingerprint and merges it per occurrence; disabling the dedup (memo
  // off) must give the same profile, for any thread count.
  GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = RepeatLaunches(BuildWorkload("PAGERANK", s), 4);
  GpuConfig no_memo = cfg;
  no_memo.memo.enabled = false;
  const MemProfile deduped = BuildMemProfileParallel(app, cfg, 2);
  const MemProfile full = BuildMemProfileParallel(app, no_memo, 2);
  for (const auto& kernel : app.kernels) {
    const KernelId id = kernel->info().id;
    for (const CompactInstr& ins : kernel->cta(0).warps[0]) {
      if (!IsGlobalMem(ins.op) || !IsLoad(ins.op)) continue;
      const PcHitRates& a = full.Lookup(id, ins.pc);
      const PcHitRates& b = deduped.Lookup(id, ins.pc);
      EXPECT_EQ(a.accesses, b.accesses) << ins.pc;
      EXPECT_EQ(a.l1_hits, b.l1_hits) << ins.pc;
      EXPECT_EQ(a.l2_hits, b.l2_hits) << ins.pc;
    }
  }
}

TEST(Prepass, DeterministicAcrossRuns) {
  const GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("SM", s);
  const MemProfile a = BuildMemProfile(app, cfg);
  const MemProfile b = BuildMemProfile(app, cfg);
  for (const CompactInstr& ins : app.kernels[0]->cta(0).warps[0]) {
    if (!IsGlobalMem(ins.op) || !IsLoad(ins.op)) continue;
    EXPECT_EQ(a.Lookup(0, ins.pc).l1_hits, b.Lookup(0, ins.pc).l1_hits);
    EXPECT_EQ(a.Lookup(0, ins.pc).l2_hits, b.Lookup(0, ins.pc).l2_hits);
  }
}

}  // namespace
}  // namespace swiftsim
