// SmCore unit tests: run hand-built kernels through a single SM in
// analytical-memory mode (no chip-level plumbing required) and check
// issue/completion/barrier/CTA-lifecycle behavior.
#include "sim/sm.h"

#include <gtest/gtest.h>

#include "analytical/cache_prepass.h"
#include "analytical/mem_model.h"
#include "config/presets.h"
#include "workloads/patterns.h"

namespace swiftsim {
namespace {

GpuConfig OneSmGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 1;
  return cfg;
}

std::shared_ptr<KernelTrace> MakeKernel(
    const std::vector<WarpTrace>& warps, std::uint32_t num_ctas = 1) {
  KernelInfo info;
  info.name = "hand";
  info.id = 0;
  info.num_ctas = num_ctas;
  info.warps_per_cta = static_cast<std::uint32_t>(warps.size());
  info.threads_per_cta = info.warps_per_cta * kWarpSize;
  CtaTrace cta;
  cta.warps = warps;
  return std::make_shared<KernelTrace>(info,
                                       std::vector<CtaTrace>{cta});
}

struct SmHarness {
  GpuConfig cfg = OneSmGpu();
  MemProfile profile;  // empty: all loads modelled as DRAM
  AnalyticalMemModel mem_model{cfg, &profile};
  unsigned completed_ctas = 0;
  SmCore sm{cfg, SelectionFor(SimLevel::kSwiftSimMemory), 0, &mem_model,
            [this](SmId) { ++completed_ctas; }};

  /// Runs the SM until idle; returns the finishing cycle.
  Cycle RunToIdle(Cycle limit = 1'000'000) {
    Cycle now = 0;
    while (!sm.Idle() && now < limit) {
      const bool progressed = sm.Tick(now);
      if (progressed) {
        ++now;
      } else {
        const Cycle wake = sm.NextWake();
        if (wake == kNever) break;
        now = std::max(now + 1, wake);
      }
    }
    return now;
  }
};

WarpTrace AluWarp(unsigned n) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.IntBlock(0x100, n, {10, 11, 12, 13});
  e.Exit(0x100 + 8 * n);
  return w;
}

TEST(SmCore, RunsSingleWarpToCompletion) {
  SmHarness h;
  const auto kernel = MakeKernel({AluWarp(20)});
  ASSERT_TRUE(h.sm.CanTakeCta(kernel->info()));
  h.sm.OnKernelStart(1);
  h.sm.LaunchCta(*kernel, 0);
  EXPECT_FALSE(h.sm.Idle());
  h.RunToIdle();
  EXPECT_TRUE(h.sm.Idle());
  EXPECT_EQ(h.completed_ctas, 1u);
  EXPECT_EQ(h.sm.stats().issued_instrs, 21u);
  EXPECT_EQ(h.sm.stats().issued_alu, 20u);
  EXPECT_EQ(h.sm.stats().issued_control, 1u);
}

TEST(SmCore, DependentChainTakesLongerThanIndependent) {
  SmHarness h;
  WarpTrace dep;
  WarpEmitter ed(&dep);
  ed.FmaChain(0x100, 30, 10, 2, 3);  // serial dependency chain
  ed.Exit(0x200);
  const Cycle t_dep = [&] {
    SmHarness hh;
    const auto k = MakeKernel({dep});
    hh.sm.OnKernelStart(1);
    hh.sm.LaunchCta(*k, 0);
    return hh.RunToIdle();
  }();
  const Cycle t_indep = [&] {
    SmHarness hh;
    const auto k = MakeKernel({AluWarp(30)});
    hh.sm.OnKernelStart(1);
    hh.sm.LaunchCta(*k, 0);
    return hh.RunToIdle();
  }();
  EXPECT_GT(t_dep, t_indep + 30);  // chain pays full latency per link
}

TEST(SmCore, BarrierSynchronizesWarps) {
  // Warp 0 computes for a long time before the barrier; warp 1 arrives
  // immediately. Both must leave together.
  WarpTrace slow, fast;
  WarpEmitter es(&slow), ef(&fast);
  es.FmaChain(0x100, 40, 10, 2, 3);
  es.Bar(0x400);
  es.Alu(0x408, Opcode::kIAdd, 11, {11});
  es.Exit(0x410);
  ef.Bar(0x400);
  ef.Alu(0x408, Opcode::kIAdd, 11, {11});
  ef.Exit(0x410);
  SmHarness h;
  const auto k = MakeKernel({slow, fast});
  h.sm.OnKernelStart(1);
  h.sm.LaunchCta(*k, 0);
  h.RunToIdle();
  EXPECT_TRUE(h.sm.Idle());
  EXPECT_EQ(h.completed_ctas, 1u);
  EXPECT_GT(h.sm.stats().barrier_waits, 0u);  // fast warp blocked
}

TEST(SmCore, ExitWaitsForOutstandingLoads) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Mem(0x100, Opcode::kLdGlobal, 9, {2}, kFullMask,
        CoalescedAddrs(0x10000000, 4));
  e.Exit(0x108);  // EXIT must wait for the DRAM-latency load writeback
  SmHarness h;
  const auto k = MakeKernel({w});
  h.sm.OnKernelStart(1);
  h.sm.LaunchCta(*k, 0);
  const Cycle done = h.RunToIdle();
  // Empty profile -> the load pays the full DRAM path latency.
  EXPECT_GE(done, h.mem_model.dram_latency());
}

TEST(SmCore, MultipleCtasShareTheSm) {
  SmHarness h;
  const auto k = MakeKernel({AluWarp(10), AluWarp(10)}, /*num_ctas=*/3);
  h.sm.OnKernelStart(1);
  unsigned launched = 0;
  for (CtaId c = 0; c < 3 && h.sm.CanTakeCta(k->info()); ++c) {
    h.sm.LaunchCta(*k, c);
    ++launched;
  }
  EXPECT_EQ(launched, 3u);  // 2 warps/CTA x 3 fits in 32 slots
  h.RunToIdle();
  EXPECT_EQ(h.completed_ctas, 3u);
}

TEST(SmCore, CapacityGatesLaunch) {
  SmHarness h;
  // 16-warp CTAs: two fit (32 warp slots), the third does not.
  const auto k = MakeKernel({AluWarp(4), AluWarp(4), AluWarp(4), AluWarp(4),
                             AluWarp(4), AluWarp(4), AluWarp(4), AluWarp(4),
                             AluWarp(4), AluWarp(4), AluWarp(4), AluWarp(4),
                             AluWarp(4), AluWarp(4), AluWarp(4), AluWarp(4)},
                            3);
  h.sm.OnKernelStart(1);
  EXPECT_TRUE(h.sm.CanTakeCta(k->info()));
  h.sm.LaunchCta(*k, 0);
  EXPECT_TRUE(h.sm.CanTakeCta(k->info()));
  h.sm.LaunchCta(*k, 1);
  EXPECT_FALSE(h.sm.CanTakeCta(k->info()));  // warp slots exhausted
}

TEST(SmCore, DeterministicCycleCounts) {
  const auto run = [] {
    SmHarness h;
    WarpTrace w;
    WarpEmitter e(&w);
    for (int i = 0; i < 10; ++i) {
      e.Mem(0x100 + 32 * i, Opcode::kLdGlobal, 9, {2}, kFullMask,
            CoalescedAddrs(0x10000000 + i * 4096, 4));
      e.Alu(0x108 + 32 * i, Opcode::kFFma, 10, {9, 9, 10});
    }
    e.Exit(0x500);
    const auto k = MakeKernel({w, w, w, w});
    h.sm.OnKernelStart(1);
    h.sm.LaunchCta(*k, 0);
    return h.RunToIdle();
  };
  EXPECT_EQ(run(), run());
}

TEST(SmCore, AnalyticalModeRequiresMemModel) {
  GpuConfig cfg = OneSmGpu();
  EXPECT_THROW(SmCore(cfg, SelectionFor(SimLevel::kSwiftSimMemory), 0,
                      nullptr, [](SmId) {}),
               SimError);
}

TEST(SmCore, NextWakeAdvancesPastStalls) {
  SmHarness h;
  WarpTrace w;
  WarpEmitter e(&w);
  e.Mem(0x100, Opcode::kLdGlobal, 9, {2}, kFullMask,
        CoalescedAddrs(0x10000000, 4));
  e.Alu(0x108, Opcode::kFFma, 10, {9, 9, 10});  // blocked on the load
  e.Exit(0x110);
  const auto k = MakeKernel({w});
  h.sm.OnKernelStart(1);
  h.sm.LaunchCta(*k, 0);
  Cycle now = 0;
  h.sm.Tick(now);  // issues the load
  ++now;
  h.sm.Tick(now);  // nothing issuable: FFMA waits on r9
  const Cycle wake = h.sm.NextWake();
  EXPECT_GT(wake, now + 10);  // sleeps toward the load completion event
  EXPECT_NE(wake, kNever);
}

}  // namespace
}  // namespace swiftsim
