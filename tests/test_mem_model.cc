#include "analytical/mem_model.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "config/presets.h"

namespace swiftsim {
namespace {

MemProfile ProfileWith(KernelId k, Pc pc, std::uint64_t l1, std::uint64_t l2,
                       std::uint64_t total) {
  MemProfile p;
  PcHitRates& r = p.Mutable(k, pc);
  r.accesses = total;
  r.l1_hits = l1;
  r.l2_hits = l2;
  p.FinalizeKernel(k);
  return p;
}

TEST(AnalyticalMemModel, Equation1AllL1) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const MemProfile p = ProfileWith(0, 0x100, 100, 0, 100);
  AnalyticalMemModel m(cfg, &p);
  EXPECT_EQ(m.LoadLatency(0, 0x100), cfg.l1.latency);
}

TEST(AnalyticalMemModel, Equation1AllDram) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const MemProfile p = ProfileWith(0, 0x100, 0, 0, 100);
  AnalyticalMemModel m(cfg, &p);
  EXPECT_EQ(m.LoadLatency(0, 0x100), m.dram_latency());
  EXPECT_GT(m.dram_latency(), m.l2_latency());
  EXPECT_GT(m.l2_latency(), m.l1_latency());
}

TEST(AnalyticalMemModel, Equation1Mixture) {
  const GpuConfig cfg = Rtx2080TiConfig();
  // 50% L1, 30% L2, 20% DRAM.
  const MemProfile p = ProfileWith(0, 0x100, 50, 30, 100);
  AnalyticalMemModel m(cfg, &p);
  const double expected = 0.5 * m.l1_latency() + 0.3 * m.l2_latency() +
                          0.2 * m.dram_latency();
  EXPECT_NEAR(static_cast<double>(m.LoadLatency(0, 0x100)), expected, 1.0);
  EXPECT_NEAR(m.DramFraction(0, 0x100), 0.2, 1e-9);
  EXPECT_NEAR(m.L1MissFraction(0, 0x100), 0.5, 1e-9);
}

TEST(AnalyticalMemModel, LatencyCompositionMatchesConfig) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const MemProfile p = ProfileWith(0, 0x100, 0, 100, 100);
  AnalyticalMemModel m(cfg, &p);
  // L2 path = L1 latency + 2 NoC traversals + L2 slice latency.
  EXPECT_EQ(m.l2_latency(),
            cfg.l1.latency + 2 * cfg.noc.latency + cfg.l2.latency);
  EXPECT_EQ(m.dram_latency(), m.l2_latency() + cfg.dram.latency);
}

TEST(AnalyticalMemModel, RequiresProfile) {
  const GpuConfig cfg = Rtx2080TiConfig();
  EXPECT_THROW(AnalyticalMemModel(cfg, nullptr), SimError);
}

TEST(ContentionModel, NoTrafficNoDelay) {
  MemContentionModel c(Rtx2080TiConfig());
  EXPECT_EQ(c.Issue(1, 4, 0.0, 0.0, 100), 0u);
  EXPECT_EQ(c.Issue(1, 4, 0.0, 0.0, 100), 0u);
  EXPECT_EQ(c.total_queue_cycles(), 0u);
}

TEST(ContentionModel, DramBoundTrafficQueues) {
  MemContentionModel c(Rtx2080TiConfig());
  Cycle last = 0;
  for (int i = 0; i < 50; ++i) {
    last = c.Issue(32, 32, 1.0, 1.0, 0);  // all DRAM, scattered
  }
  EXPECT_GT(last, 0u);
  EXPECT_GT(c.total_queue_cycles(), 0u);
}

TEST(ContentionModel, DelayGrowsMonotonicallyInBurst) {
  MemContentionModel c(Rtx2080TiConfig());
  Cycle prev = 0;
  for (int i = 0; i < 10; ++i) {
    const Cycle d = c.Issue(32, 32, 1.0, 0.5, 0);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(ContentionModel, PipeDrainsWhenTimeAdvances) {
  MemContentionModel c(Rtx2080TiConfig());
  for (int i = 0; i < 20; ++i) c.Issue(32, 32, 1.0, 1.0, 0);
  const Cycle backlog = c.Issue(1, 1, 1.0, 1.0, 0);
  // Far in the future the pipes have drained.
  EXPECT_LT(c.Issue(1, 1, 1.0, 1.0, backlog + 100000), 10u);
}

TEST(ContentionModel, CoalescedTrafficOutperformsScattered) {
  // Same byte volume: 32 sectors as 8 full-line accesses vs. 32
  // single-sector lines. The locality-aware efficiency must make the
  // scattered case queue more.
  MemContentionModel coalesced(Rtx2080TiConfig());
  MemContentionModel scattered(Rtx2080TiConfig());
  Cycle dc = 0, ds = 0;
  for (int i = 0; i < 50; ++i) {
    dc = coalesced.Issue(8, 32, 1.0, 1.0, 0);
    ds = scattered.Issue(32, 32, 1.0, 1.0, 0);
  }
  EXPECT_LT(dc, ds);
}

TEST(ContentionModel, FewerActiveSmsMeansMoreBandwidthEach) {
  MemContentionModel wide(Rtx2080TiConfig());
  MemContentionModel narrow(Rtx2080TiConfig());
  wide.SetActiveSms(68);
  narrow.SetActiveSms(4);
  Cycle dw = 0, dn = 0;
  for (int i = 0; i < 50; ++i) {
    dw = wide.Issue(8, 32, 1.0, 1.0, 0);
    dn = narrow.Issue(8, 32, 1.0, 1.0, 0);
  }
  EXPECT_LT(dn, dw);
}

}  // namespace
}  // namespace swiftsim
