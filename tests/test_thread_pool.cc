// Unit tests for the shared persistent thread pool: completion, ordering,
// exception propagation and reuse across submissions.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 0,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSingleWorkerRunsInlineInOrder) {
  ThreadPool pool(2);
  std::vector<std::size_t> order;
  pool.ParallelFor(64, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForZeroItemsIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, TaskGroupWaitsForAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  ThreadPool::TaskGroup group(pool);
  for (int t = 0; t < 20; ++t) {
    group.Run([&] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, WorkerExceptionRethrownOnJoiningThread) {
  // An SS_CHECK failure inside a worker must surface as a SimError from
  // Wait(), not std::terminate the process.
  ThreadPool pool(2);
  {
    ThreadPool::TaskGroup group(pool);
    group.Run([] { SS_CHECK(false, "boom in worker"); });
    EXPECT_THROW(group.Wait(), SimError);
  }
  // The pool survives and keeps executing work afterwards.
  std::atomic<int> done{0};
  pool.ParallelFor(8, 0, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 0,
                                [&](std::size_t i) {
                                  SS_CHECK(i != 37, "index 37 rejected");
                                }),
               SimError);
}

TEST(ThreadPool, ReusableAcrossManySubmissions) {
  ThreadPool pool(2);
  std::uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> out(16, 0);
    pool.ParallelFor(out.size(), 0, [&](std::size_t i) { out[i] = i; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 50u * (15u * 16u / 2));
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.EnsureWorkers(2);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace swiftsim
