#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <set>

namespace swiftsim {
namespace {

std::function<std::uint64_t(unsigned)> AgeBySlot() {
  return [](unsigned slot) { return std::uint64_t{slot}; };
}

TEST(GtoScheduler, PicksOldestWhenNothingGreedy) {
  WarpScheduler sched(SchedPolicy::kGto, 8);
  auto ready = [](unsigned slot) { return slot == 3 || slot == 6; };
  EXPECT_EQ(sched.Pick(ready, AgeBySlot()), 3u);  // 3 is older
}

TEST(GtoScheduler, StaysGreedyOnLastIssued) {
  WarpScheduler sched(SchedPolicy::kGto, 8);
  auto all_ready = [](unsigned) { return true; };
  const unsigned first = sched.Pick(all_ready, AgeBySlot());
  sched.OnIssue(first);
  // With everything ready, GTO sticks to the same warp.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sched.Pick(all_ready, AgeBySlot()), first);
    sched.OnIssue(first);
  }
}

TEST(GtoScheduler, FallsBackToOldestWhenGreedyStalls) {
  WarpScheduler sched(SchedPolicy::kGto, 8);
  auto all_ready = [](unsigned) { return true; };
  const unsigned first = sched.Pick(all_ready, AgeBySlot());
  sched.OnIssue(first);
  auto except_first = [first](unsigned s) { return s != first; };
  const unsigned next = sched.Pick(except_first, AgeBySlot());
  EXPECT_NE(next, first);
  // Oldest ready: slot 0 unless first==0, then slot 1.
  EXPECT_EQ(next, first == 0 ? 1u : 0u);
}

TEST(GtoScheduler, RespectsCustomAges) {
  WarpScheduler sched(SchedPolicy::kGto, 4);
  auto ready = [](unsigned) { return true; };
  // Slot 2 is oldest (smallest launch_seq).
  auto age = [](unsigned slot) {
    const std::uint64_t ages[] = {30, 20, 10, 40};
    return ages[slot];
  };
  EXPECT_EQ(sched.Pick(ready, age), 2u);
}

TEST(GtoScheduler, ReturnsNoSlotWhenNothingReady) {
  WarpScheduler sched(SchedPolicy::kGto, 8);
  auto none = [](unsigned) { return false; };
  EXPECT_EQ(sched.Pick(none, AgeBySlot()), kNoSlot);
}

TEST(LrrScheduler, RotatesThroughReadyWarps) {
  WarpScheduler sched(SchedPolicy::kLrr, 4);
  auto all_ready = [](unsigned) { return true; };
  std::vector<unsigned> order;
  for (int i = 0; i < 8; ++i) {
    const unsigned s = sched.Pick(all_ready, AgeBySlot());
    order.push_back(s);
    sched.OnIssue(s);
  }
  // Loose round-robin visits every slot before repeating.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
  EXPECT_EQ(order[4], 0u);
}

TEST(LrrScheduler, SkipsUnready) {
  WarpScheduler sched(SchedPolicy::kLrr, 4);
  auto odd_only = [](unsigned s) { return s % 2 == 1; };
  const unsigned a = sched.Pick(odd_only, AgeBySlot());
  sched.OnIssue(a);
  const unsigned b = sched.Pick(odd_only, AgeBySlot());
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 3u);
}

TEST(TwoLevelScheduler, IssuesFromActiveSet) {
  WarpScheduler sched(SchedPolicy::kTwoLevel, 16, 4);
  auto all_ready = [](unsigned) { return true; };
  std::set<unsigned> seen;
  for (int i = 0; i < 16; ++i) {
    const unsigned s = sched.Pick(all_ready, AgeBySlot());
    ASSERT_NE(s, kNoSlot);
    seen.insert(s);
    sched.OnIssue(s);
  }
  // With everyone ready, only the 4 active slots issue.
  EXPECT_LE(seen.size(), 4u);
}

TEST(TwoLevelScheduler, PromotesWhenActiveStalls) {
  WarpScheduler sched(SchedPolicy::kTwoLevel, 16, 4);
  // Only warp 10 (outside the initial active set {0..3}) is ready; after
  // enough stalled picks it must be promoted and issue.
  auto only_ten = [](unsigned s) { return s == 10; };
  unsigned picked = kNoSlot;
  for (int i = 0; i < 300 && picked == kNoSlot; ++i) {
    picked = sched.Pick(only_ten, AgeBySlot());
  }
  EXPECT_EQ(picked, 10u);
}

TEST(Scheduler, OnSlotDrainedClearsGreedy) {
  WarpScheduler sched(SchedPolicy::kGto, 4);
  auto all_ready = [](unsigned) { return true; };
  const unsigned first = sched.Pick(all_ready, AgeBySlot());
  sched.OnIssue(first);
  sched.OnSlotDrained(first);
  // Greedy target cleared: falls back to oldest (slot 0).
  EXPECT_EQ(sched.Pick(all_ready, AgeBySlot()), 0u);
}

TEST(Scheduler, SingleSlotAlwaysPicksZero) {
  for (auto pol : {SchedPolicy::kGto, SchedPolicy::kLrr,
                   SchedPolicy::kTwoLevel}) {
    WarpScheduler sched(pol, 1);
    auto ready = [](unsigned) { return true; };
    EXPECT_EQ(sched.Pick(ready, AgeBySlot()), 0u) << ToString(pol);
  }
}

}  // namespace
}  // namespace swiftsim
