// Determinism and exactness tests for the parallel runners: the
// bounded-slack parallel detailed simulator must be bit-identical to the
// serial loop at slack=1 for every thread count, and the SM-parallel
// analytical-memory runner must not depend on its thread count.
#include "swiftsim/parallel_detailed.h"

#include <gtest/gtest.h>

#include <cmath>

#include "config/presets.h"
#include "swiftsim/parallel.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application SmallApp(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.03;
  return BuildWorkload(name, s);
}

void ExpectIdentical(const SimResult& serial, const SimResult& parallel,
                     const std::string& what) {
  EXPECT_EQ(serial.total_cycles, parallel.total_cycles) << what;
  EXPECT_EQ(serial.instructions, parallel.instructions) << what;
  ASSERT_EQ(serial.kernels.size(), parallel.kernels.size()) << what;
  for (std::size_t k = 0; k < serial.kernels.size(); ++k) {
    EXPECT_EQ(serial.kernels[k].cycles, parallel.kernels[k].cycles)
        << what << " kernel " << serial.kernels[k].name;
    EXPECT_EQ(serial.kernels[k].instructions,
              parallel.kernels[k].instructions)
        << what << " kernel " << serial.kernels[k].name;
  }
}

TEST(ParallelDetailed, SlackOneBitIdenticalToSerialAcrossThreadCounts) {
  const GpuConfig cfg = SmallGpu();
  for (const char* name : {"SM", "BFS"}) {
    const Application app = SmallApp(name);
    for (SimLevel level : {SimLevel::kSwiftSimBasic, SimLevel::kDetailed}) {
      const SimResult serial = RunSimulation(app, cfg, level);
      for (unsigned threads : {1u, 2u, 8u}) {
        ParallelDetailedOptions opt;
        opt.num_threads = threads;
        opt.slack = 1;
        const SimResult par = RunParallelDetailed(app, cfg, level, opt);
        ExpectIdentical(serial, par,
                        std::string(name) + "/" + ToString(level) + "/t" +
                            std::to_string(threads));
      }
    }
  }
}

TEST(ParallelDetailed, SiliconLevelWithLaunchOverheadStaysExact) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("GEMM");
  const SimResult serial = RunSimulation(app, cfg, SimLevel::kSilicon);
  ParallelDetailedOptions opt;
  opt.num_threads = 4;
  const SimResult par =
      RunParallelDetailed(app, cfg, SimLevel::kSilicon, opt);
  ExpectIdentical(serial, par, "GEMM/silicon");
}

TEST(ParallelDetailed, SlackWindowIsThreadCountInvariant) {
  // The slack approximation depends only on the window length, never on
  // how many shards the SMs were split into.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  ParallelDetailedOptions a;
  a.num_threads = 1;
  a.slack = 8;
  ParallelDetailedOptions b = a;
  b.num_threads = 4;
  const SimResult ra =
      RunParallelDetailed(app, cfg, SimLevel::kSwiftSimBasic, a);
  const SimResult rb =
      RunParallelDetailed(app, cfg, SimLevel::kSwiftSimBasic, b);
  ExpectIdentical(ra, rb, "SM/slack8");
}

TEST(ParallelDetailed, SlackBeyondOneStaysNearSerial) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  const SimResult serial =
      RunSimulation(app, cfg, SimLevel::kSwiftSimBasic);
  ParallelDetailedOptions opt;
  opt.num_threads = 2;
  opt.slack = 16;
  const SimResult par =
      RunParallelDetailed(app, cfg, SimLevel::kSwiftSimBasic, opt);
  EXPECT_EQ(serial.instructions, par.instructions);
  const double rel =
      std::abs(static_cast<double>(par.total_cycles) -
               static_cast<double>(serial.total_cycles)) /
      static_cast<double>(serial.total_cycles);
  EXPECT_LT(rel, 0.15) << "slack=16 drifted " << rel << " from serial";
}

TEST(ParallelDetailed, ReportsMetricsAndLabel) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  ParallelDetailedOptions opt;
  opt.num_threads = 2;
  const SimResult r =
      RunParallelDetailed(app, cfg, SimLevel::kSwiftSimBasic, opt);
  EXPECT_EQ(r.simulator, ToString(SimLevel::kSwiftSimBasic) + "+taskgraph");
  EXPECT_FALSE(r.metrics.empty());
  EXPECT_GT(r.metrics.at("sm0.issued_instrs"), 0u);
  EXPECT_GT(r.metrics.at("driver.tg_rounds"), 0u);
  EXPECT_GT(r.metrics.at("driver.tg_tasks_executed"),
            r.metrics.at("driver.tg_rounds"));
  EXPECT_EQ(r.metrics.at("driver.tg_clusters"), 2u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(ParallelDetailed, RejectsBadOptionsAndAnalyticalLevels) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  ParallelDetailedOptions zero_slack;
  zero_slack.slack = 0;
  EXPECT_THROW(RunParallelDetailed(app, cfg, SimLevel::kSwiftSimBasic,
                                   zero_slack),
               SimError);
  EXPECT_THROW(
      RunParallelDetailed(app, cfg, SimLevel::kSwiftSimMemory, {}),
      SimError);
}

TEST(ParallelMemory, DeterministicAcrossThreadCounts) {
  const GpuConfig cfg = SmallGpu();
  for (const char* name : {"SM", "GEMM"}) {
    const Application app = SmallApp(name);
    const SimResult one = RunSmParallelMemory(app, cfg, 1);
    for (unsigned threads : {2u, 8u}) {
      const SimResult many = RunSmParallelMemory(app, cfg, threads);
      ExpectIdentical(one, many,
                      std::string(name) + "/t" + std::to_string(threads));
    }
  }
}

TEST(ParallelMemory, PopulatesPerSmMetrics) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  const SimResult r = RunSmParallelMemory(app, cfg, 2);
  EXPECT_FALSE(r.metrics.empty());
  EXPECT_GT(r.metrics.at("sm0.issued_instrs"), 0u);
  std::uint64_t issued = 0;
  for (const auto& [key, value] : r.metrics) {
    if (key.find("issued_instrs") != std::string::npos) issued += value;
  }
  EXPECT_EQ(issued, r.instructions);
}

}  // namespace
}  // namespace swiftsim
