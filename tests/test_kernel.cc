#include "trace/kernel.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "workloads/patterns.h"

namespace swiftsim {
namespace {

WarpTrace MakeWarp(bool with_exit = true, Pc first_pc = 0x10) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(first_pc, Opcode::kIAdd, 4, {4});
  e.Mem(0x18, Opcode::kLdGlobal, 5, {4}, kFullMask,
        CoalescedAddrs(0x1000, 4));
  if (with_exit) e.Exit(0x20);
  return w;
}

KernelInfo MakeInfo(std::uint32_t ctas = 2, std::uint32_t warps = 2) {
  KernelInfo info;
  info.name = "k";
  info.num_ctas = ctas;
  info.warps_per_cta = warps;
  info.threads_per_cta = warps * kWarpSize;
  return info;
}

TEST(KernelInfo, ValidateChecksFields) {
  KernelInfo info = MakeInfo();
  EXPECT_NO_THROW(info.Validate());
  info.num_ctas = 0;
  EXPECT_THROW(info.Validate(), SimError);
  info = MakeInfo();
  info.threads_per_cta = 1000;  // more than warps * 32
  EXPECT_THROW(info.Validate(), SimError);
  info = MakeInfo();
  info.name.clear();
  EXPECT_THROW(info.Validate(), SimError);
}

TEST(KernelTrace, VariantSharing) {
  CtaTrace v0{{MakeWarp(), MakeWarp()}};
  CtaTrace v1{{MakeWarp(true, 0x99), MakeWarp()}};  // distinguishable pc
  KernelTrace k(MakeInfo(5, 2), {v0, v1});
  EXPECT_EQ(k.num_variants(), 2u);
  // CTA i is backed by variant i % 2.
  EXPECT_EQ(k.cta(0).warps[0].front().pc, k.cta(2).warps[0].front().pc);
  EXPECT_EQ(k.cta(1).warps[0].front().pc, 0x99u);
  EXPECT_THROW(k.cta(5), SimError);  // out of range
}

TEST(KernelTrace, TotalInstrs) {
  CtaTrace v{{MakeWarp(), MakeWarp()}};
  KernelTrace k(MakeInfo(3, 2), {v});
  EXPECT_EQ(k.TotalInstrs(), 3u * 2 * 3);
}

TEST(ValidateTrace, AcceptsWellFormed) {
  CtaTrace v{{MakeWarp(), MakeWarp()}};
  KernelTrace k(MakeInfo(1, 2), {v});
  EXPECT_NO_THROW(k.ValidateTrace());
}

TEST(ValidateTrace, RejectsMissingExit) {
  CtaTrace v{{MakeWarp(/*with_exit=*/false), MakeWarp()}};
  KernelTrace k(MakeInfo(1, 2), {v});
  EXPECT_THROW(k.ValidateTrace(), SimError);
}

TEST(ValidateTrace, RejectsBarrierMismatch) {
  WarpTrace a, b;
  WarpEmitter ea(&a), eb(&b);
  ea.Bar(0x10);
  ea.Exit(0x18);
  eb.Exit(0x18);  // no barrier: CTA would deadlock
  CtaTrace v{{a, b}};
  KernelTrace k(MakeInfo(1, 2), {v});
  EXPECT_THROW(k.ValidateTrace(), SimError);
}

TEST(ValidateTrace, RejectsAddressCountMismatch) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(0x10, Opcode::kIAdd, 4, {});
  e.Exit(0x18);
  // Corrupt: a memory op carrying one address for 32 active lanes. The
  // columnar store encodes it faithfully; validation must reject it.
  WarpTrace corrupt;
  TraceInstr bad;
  bad.pc = 0x14;
  bad.op = Opcode::kLdGlobal;
  bad.active = kFullMask;
  bad.addrs = {0x1000};
  corrupt.push_back(w.Decode(0));
  corrupt.push_back(bad);
  corrupt.push_back(w.Decode(1));
  CtaTrace v{{corrupt}};
  KernelTrace k(MakeInfo(1, 1), {v});
  EXPECT_THROW(k.ValidateTrace(), SimError);
}

TEST(ValidateTrace, RejectsWarpCountMismatch) {
  CtaTrace v{{MakeWarp()}};  // 1 warp but info says 2
  KernelTrace k(MakeInfo(1, 2), {v});
  EXPECT_THROW(k.ValidateTrace(), SimError);
}

TEST(ValidateTrace, RejectsEmptyActiveMask) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(0x10, Opcode::kIAdd, 4, {4}, /*mask=*/0);
  e.Exit(0x18);
  CtaTrace v{{w}};
  KernelTrace k(MakeInfo(1, 1), {v});
  EXPECT_THROW(k.ValidateTrace(), SimError);
}

TEST(Application, TotalInstrsSumsKernels) {
  CtaTrace v{{MakeWarp()}};
  Application app;
  app.name = "a";
  app.kernels.push_back(
      std::make_shared<KernelTrace>(MakeInfo(2, 1), std::vector<CtaTrace>{v}));
  app.kernels.push_back(
      std::make_shared<KernelTrace>(MakeInfo(3, 1), std::vector<CtaTrace>{v}));
  EXPECT_EQ(app.TotalInstrs(), (2u + 3u) * 3);
}

TEST(KernelTrace, RejectsEmptyVariantList) {
  EXPECT_THROW(KernelTrace(MakeInfo(), {}), SimError);
}

}  // namespace
}  // namespace swiftsim
