#include "common/strutil.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(StrUtil, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtil, Split) {
  const auto parts = Split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);        // one empty piece
  EXPECT_EQ(Split("a,,b", ',').size(), 3u);    // empty middles kept
}

TEST(StrUtil, SplitWs) {
  const auto parts = SplitWs("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWs("   ").empty());
}

TEST(StrUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
}

TEST(StrUtil, ParseIntDecimalAndHex) {
  EXPECT_EQ(ParseInt("42", "t"), 42);
  EXPECT_EQ(ParseInt("-17", "t"), -17);
  EXPECT_EQ(ParseInt("0x10", "t"), 16);
  EXPECT_EQ(ParseUint("0xFF", "t"), 255u);
  EXPECT_EQ(ParseInt(" 7 ", "t"), 7);
}

TEST(StrUtil, ParseIntRejectsGarbage) {
  EXPECT_THROW(ParseInt("", "t"), SimError);
  EXPECT_THROW(ParseInt("12x", "t"), SimError);
  EXPECT_THROW(ParseInt("abc", "t"), SimError);
  EXPECT_THROW(ParseUint("-5", "t"), SimError);
}

TEST(StrUtil, ParseIntErrorNamesContext) {
  try {
    ParseInt("bogus", "l1.latency");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("l1.latency"), std::string::npos);
  }
}

TEST(StrUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5", "t"), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3", "t"), -1000.0);
  EXPECT_THROW(ParseDouble("2.5.6", "t"), SimError);
  EXPECT_THROW(ParseDouble("", "t"), SimError);
}

TEST(StrUtil, ParseBool) {
  EXPECT_TRUE(ParseBool("true", "t"));
  EXPECT_TRUE(ParseBool("1", "t"));
  EXPECT_TRUE(ParseBool("TRUE", "t"));
  EXPECT_FALSE(ParseBool("false", "t"));
  EXPECT_FALSE(ParseBool("0", "t"));
  EXPECT_THROW(ParseBool("yes", "t"), SimError);
}

TEST(StrUtil, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

}  // namespace
}  // namespace swiftsim
