// Persistent-service gates (DESIGN.md §15): protocol round-trips, the
// bit-identity guarantee (daemon results == one-shot runs, including
// coalesced fan-outs and memo-file reloads), admission control, per-
// request isolation, and the concurrency surface — many client threads
// hammering one service, and the process-global MemoCache/ProfileCache/
// built-trace caches hammered directly from racing workers. The whole
// binary carries the `tsan` ctest label so -DSWIFTSIM_TSAN=ON builds
// race-check every path a daemon worker lane touches.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/journal.h"
#include "common/json.h"
#include "common/status.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/service.h"
#include "swiftsim/supervisor.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

using service::ErrorCode;
using service::JobRequest;
using service::Limits;
using service::Op;
using service::Request;
using service::Response;
using service::ServeLines;
using service::ServeResult;
using service::ServiceOptions;
using service::ServiceStats;
using service::SimulationService;

constexpr double kScale = 0.05;

class ServiceTest : public ::testing::Test {
 protected:
  // The global caches are shared across every test in the process; each
  // test starts cold so memo_hits/memo_misses assertions are meaningful.
  void SetUp() override {
    MemoCache::Global().Clear();
    ProfileCache::Global().Clear();
  }

  static JobRequest Job(const std::string& id, const std::string& workload,
                        unsigned iterations = 2,
                        std::uint64_t seed = 0x5eed5eedULL) {
    JobRequest j;
    j.id = id;
    j.workload = workload;
    j.scale = kScale;
    j.seed = seed;
    j.iterations = iterations;
    return j;
  }

  static Cycle Reference(const JobRequest& j) {
    Application app = RepeatLaunches(
        BuildWorkload(j.workload, {j.scale, j.seed}), j.iterations);
    GpuConfig cfg;
    return RunSimulation(app, cfg, SimLevel::kSwiftSimMemory).total_cycles;
  }
};

// ---------------------------------------------------------------------------
// Protocol round-trips.

TEST_F(ServiceTest, ParseSimulateRequestRoundTrips) {
  Request req;
  ErrorCode code;
  std::string msg, id;
  const std::string line =
      R"({"op":"simulate","id":"j1","workload":"BFS","scale":0.1,)"
      R"("seed":12345,"iterations":4,"level":"memory",)"
      R"("config":"[gpu]\nnum_sms = 35\n","timeout_sec":2.5})";
  ASSERT_TRUE(service::ParseRequestLine(line, Limits{}, &req, &code, &msg, &id))
      << msg;
  EXPECT_EQ(req.op, Op::kSimulate);
  EXPECT_EQ(req.job.id, "j1");
  EXPECT_EQ(req.job.workload, "BFS");
  EXPECT_DOUBLE_EQ(req.job.scale, 0.1);
  EXPECT_EQ(req.job.seed, 12345u);
  EXPECT_EQ(req.job.iterations, 4u);
  EXPECT_EQ(req.job.level, SimLevel::kSwiftSimMemory);
  EXPECT_NE(req.job.config_ini.find("num_sms"), std::string::npos);
  EXPECT_DOUBLE_EQ(req.job.timeout_sec, 2.5);
}

TEST_F(ServiceTest, SeedRoundTripsAllSixtyFourBits) {
  Request req;
  ErrorCode code;
  std::string msg, id;
  const std::string line =
      R"({"workload":"NW","seed":18446744073709551615,"id":"s"})";
  ASSERT_TRUE(
      service::ParseRequestLine(line, Limits{}, &req, &code, &msg, &id));
  EXPECT_EQ(req.job.seed, 18446744073709551615ull);
}

TEST_F(ServiceTest, EncodeResponseEmitsTypedErrors) {
  Response r;
  r.id = "x";
  r.ok = false;
  r.error = ErrorCode::kQueueFull;
  r.error_message = "queue full (capacity 4)";
  JsonValue v = ParseJson(service::EncodeResponse(r));
  EXPECT_EQ(v.Find("id")->AsString(), "x");
  EXPECT_FALSE(v.Find("ok")->AsBool());
  EXPECT_EQ(v.Find("error")->AsString(), "queue_full");
}

// ---------------------------------------------------------------------------
// Bit-identity: the header's core guarantee.

TEST_F(ServiceTest, ResultsBitIdenticalToOneShotRuns) {
  SimulationService svc(ServiceOptions{});
  for (const char* name : {"NW", "BFS"}) {
    JobRequest j = Job(std::string("id-") + name, name, /*iterations=*/3);
    Cycle want = Reference(j);
    Response r = svc.SubmitAndWait(j);
    ASSERT_TRUE(r.ok) << r.error_message;
    EXPECT_EQ(r.cycles, want) << name;
    // Second submission of the same job replays entirely from the warm
    // MemoCache — still bit-identical.
    Response warm = svc.SubmitAndWait(j);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.cycles, want) << name << " (warm)";
    EXPECT_EQ(warm.memo_misses, 0u) << name << " warm run simulated";
  }
}

TEST_F(ServiceTest, MemoFileReloadStaysBitIdentical) {
  const std::string memo_file =
      (std::filesystem::temp_directory_path() /
       ("svc-test-memo-" + std::to_string(::getpid()))).string();
  JobRequest j = Job("persist", "NW", /*iterations=*/4);
  Cycle want = Reference(j);

  ServiceOptions opt;
  opt.memo_file = memo_file;
  {
    SimulationService svc(opt);
    Response r = svc.SubmitAndWait(j);
    ASSERT_TRUE(r.ok) << r.error_message;
    EXPECT_EQ(r.cycles, want);
    svc.Stop();  // persists via atomic temp-file rename
  }
  ASSERT_TRUE(std::filesystem::exists(memo_file));

  // Fresh caches + a fresh service: every launch must replay from disk.
  MemoCache::Global().Clear();
  ProfileCache::Global().Clear();
  {
    SimulationService svc(opt);
    Response r = svc.SubmitAndWait(j);
    ASSERT_TRUE(r.ok) << r.error_message;
    EXPECT_EQ(r.cycles, want);
    EXPECT_EQ(r.memo_misses, 0u) << "reload simulated instead of replaying";
    EXPECT_GT(r.memo_hits, 0u);
  }
  std::filesystem::remove(memo_file);
}

// ---------------------------------------------------------------------------
// Coalescing.

TEST_F(ServiceTest, IdenticalInFlightJobsCoalesce) {
  ServiceOptions opt;
  opt.threads = 1;
  opt.max_concurrent = 1;  // one lane: followers must pile onto the leader
  SimulationService svc(opt);

  constexpr int kClients = 6;
  JobRequest j = Job("burst", "NW", /*iterations=*/2);
  Cycle want = Reference(j);

  std::mutex mu;
  std::vector<Response> got;
  std::atomic<int> pending{kClients};
  for (int i = 0; i < kClients; ++i) {
    JobRequest each = j;
    each.id = "burst-" + std::to_string(i);
    Response rejection;
    bool accepted = svc.Submit(
        each,
        [&](const Response& r) {
          std::lock_guard<std::mutex> lk(mu);
          got.push_back(r);
          pending.fetch_sub(1);
        },
        &rejection);
    ASSERT_TRUE(accepted) << rejection.error_message;
  }
  while (pending.load() > 0) std::this_thread::yield();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kClients));
  std::size_t coalesced = 0;
  for (const Response& r : got) {
    ASSERT_TRUE(r.ok) << r.id << ": " << r.error_message;
    EXPECT_EQ(r.cycles, want) << r.id << " fan-out diverged";
    if (r.coalesced) ++coalesced;
  }
  // The leader was admitted first; every later twin attached to it.
  EXPECT_EQ(coalesced, static_cast<std::size_t>(kClients - 1));
  EXPECT_EQ(svc.stats().coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST_F(ServiceTest, DifferentConfigsDoNotCoalesce) {
  ServiceOptions opt;
  opt.threads = 1;
  opt.max_concurrent = 1;
  SimulationService svc(opt);
  JobRequest a = Job("cfg-a", "NW");
  JobRequest b = a;
  b.id = "cfg-b";
  b.config_ini = "[gpu]\nnum_sms = 1\n";
  Response ra = svc.SubmitAndWait(a);
  Response rb = svc.SubmitAndWait(b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_NE(ra.cycles, rb.cycles)
      << "1-SM config produced the default cycle count";
  EXPECT_EQ(svc.stats().coalesced, 0u);
}

// ---------------------------------------------------------------------------
// Admission control and per-request isolation.

TEST_F(ServiceTest, BoundedQueueRejectsOverloadWithTypedError) {
  ServiceOptions opt;
  opt.threads = 1;
  opt.max_concurrent = 1;
  opt.queue_capacity = 1;
  SimulationService svc(opt);

  std::atomic<int> done{0};
  std::size_t accepted = 0, queue_full = 0;
  // Distinct seeds defeat coalescing, so each job needs its own queue
  // slot; with one lane and one slot most of the burst must bounce.
  for (int i = 0; i < 8; ++i) {
    JobRequest j = Job("load-" + std::to_string(i), "NW", /*iterations=*/1,
                       /*seed=*/0x1000 + i);
    Response rejection;
    if (svc.Submit(j, [&](const Response&) { done.fetch_add(1); },
                   &rejection)) {
      ++accepted;
    } else {
      EXPECT_EQ(rejection.error, ErrorCode::kQueueFull);
      EXPECT_NE(rejection.error_message.find("queue full"), std::string::npos);
      ++queue_full;
    }
  }
  EXPECT_GE(queue_full, 1u) << "burst of 8 into capacity 1 never bounced";
  while (done.load() < static_cast<int>(accepted)) std::this_thread::yield();
  EXPECT_EQ(svc.stats().rejected, queue_full);
  EXPECT_EQ(svc.stats().completed, accepted);
}

TEST_F(ServiceTest, OversizedAndUnknownJobsRejectedBeforeAdmission) {
  SimulationService svc(ServiceOptions{});
  Response rejection;
  JobRequest big = Job("big", "NW");
  big.scale = 100.0;
  EXPECT_FALSE(svc.Submit(big, [](const Response&) {}, &rejection));
  EXPECT_EQ(rejection.error, ErrorCode::kOversized);

  JobRequest ghost = Job("ghost", "NO_SUCH_WORKLOAD");
  EXPECT_FALSE(svc.Submit(ghost, [](const Response&) {}, &rejection));
  EXPECT_EQ(rejection.error, ErrorCode::kUnknownWorkload);

  JobRequest bad_cfg = Job("bad-cfg", "NW");
  bad_cfg.config_ini = "[gpu]\nno_such_knob = 1\n";
  EXPECT_FALSE(svc.Submit(bad_cfg, [](const Response&) {}, &rejection));
  EXPECT_EQ(rejection.error, ErrorCode::kBadConfig);
  EXPECT_NE(rejection.error_message.find("no_such_knob"), std::string::npos);
}

TEST_F(ServiceTest, WatchdogTimeoutIsIsolatedAndServiceKeepsServing) {
  SimulationService svc(ServiceOptions{});
  // A fresh seed forces real simulation; a sub-microsecond wall budget
  // trips the §11 watchdog inside the first kernel.
  JobRequest doomed = Job("doomed", "BFS", /*iterations=*/1,
                          /*seed=*/0xdead0001);
  doomed.timeout_sec = 1e-6;
  Response r = svc.SubmitAndWait(doomed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, ErrorCode::kSimTimeout);
  EXPECT_EQ(r.status, "timeout");
  EXPECT_EQ(svc.stats().timeouts, 1u);

  // The daemon stays up: the next (healthy) job completes bit-identically.
  JobRequest fine = Job("fine", "NW");
  Cycle want = Reference(fine);
  Response ok = svc.SubmitAndWait(fine);
  ASSERT_TRUE(ok.ok) << ok.error_message;
  EXPECT_EQ(ok.cycles, want);
}

// ---------------------------------------------------------------------------
// Transport loop.

TEST_F(ServiceTest, ServeLinesHandlesMixedOpsAndShutsDown) {
  SimulationService svc(ServiceOptions{});
  Cycle want = Reference(Job("", "NW", /*iterations=*/2));
  std::istringstream in(
      R"({"op":"ping","id":"p"})"
      "\n"
      R"({"op":"simulate","id":"s1","workload":"NW","scale":0.05,)"
      R"("iterations":2})"
      "\n"
      R"({"op":"stats","id":"st"})"
      "\n"
      R"({"op":"shutdown","id":"bye"})"
      "\n");
  std::ostringstream out;
  ServeResult res = ServeLines(in, out, svc);
  EXPECT_TRUE(res.shutdown);
  EXPECT_EQ(res.handled, 4u);

  std::istringstream lines(out.str());
  std::string line;
  bool saw_pong = false, saw_sim = false, saw_stats = false, saw_bye = false;
  while (std::getline(lines, line)) {
    JsonValue v = ParseJson(line);
    const std::string id = v.Find("id")->AsString();
    if (id == "p") saw_pong = v.Find("status")->AsString() == "pong";
    if (id == "s1") {
      saw_sim = v.Find("ok")->AsBool();
      EXPECT_EQ(v.Find("cycles")->AsUint(), want);
    }
    if (id == "st") saw_stats = v.Find("stats") != nullptr;
    if (id == "bye") saw_bye = v.Find("status")->AsString() == "shutting_down";
  }
  EXPECT_TRUE(saw_pong && saw_sim && saw_stats && saw_bye);
}

// ---------------------------------------------------------------------------
// Concurrency hammers (the tsan targets).

TEST_F(ServiceTest, ConcurrentClientsShareWarmStateRaceFree) {
  ServiceOptions opt;
  opt.threads = 2;
  opt.max_concurrent = 2;
  SimulationService svc(opt);
  const Cycle want_nw = Reference(Job("", "NW", /*iterations=*/1));
  const Cycle want_bfs = Reference(Job("", "BFS", /*iterations=*/1));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Half the clients hit the same two hot jobs (coalescing + warm
        // replay), half scatter across seeds (cold simulation) — both
        // sides race on the same global caches.
        const bool hot = (t + i) % 2 == 0;
        JobRequest j = Job("c" + std::to_string(t) + "-" + std::to_string(i),
                           hot ? ((t % 2) ? "BFS" : "NW") : "NW",
                           /*iterations=*/1,
                           hot ? 0x5eed5eedULL : 0x9000 + t * 16 + i);
        Response r = svc.SubmitAndWait(j);
        if (!r.ok) {
          failures.fetch_add(1);
          continue;
        }
        if (hot && r.cycles != ((t % 2) ? want_bfs : want_nw)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed + s.coalesced, kThreads * kPerThread);
}

TEST_F(ServiceTest, GlobalCachesSurviveDirectConcurrentHammer) {
  // Raw cache races a service deployment creates: lanes replaying and
  // recording launches, the stats reporter sizing the caches, and a
  // shutdown path saving to disk — all at once.
  Application app = BuildWorkload("NW", {kScale, 0x5eed5eedULL});
  GpuConfig cfg;
  const std::string dump =
      (std::filesystem::temp_directory_path() /
       ("svc-test-hammer-" + std::to_string(::getpid()))).string();

  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (int i = 0; i < 3; ++i) {
          switch (t % 3) {
            case 0:  // replay/record through the full memoized path
              (void)RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
              break;
            case 1:  // reader side: sizes and persistence
              while (!stop.load()) {
                (void)MemoCache::Global().size();
                (void)MemoCache::Global().bytes();
                (void)ProfileCache::Global().size();
                MemoCache::Global().SaveToFile(dump);
                std::this_thread::yield();
              }
              return;
            default:  // cache-churn side: caps force concurrent eviction
              MemoCache::Global().SetLimits(/*max_entries=*/64,
                                            /*max_bytes=*/0);
              (void)RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
              break;
          }
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
    });
  }
  // Let the simulating threads finish, then release the reader loop.
  for (std::size_t t = 0; t < workers.size(); ++t) {
    if (t % 3 != 1) workers[t].join();
  }
  stop.store(true);
  for (std::size_t t = 0; t < workers.size(); ++t) {
    if (t % 3 == 1) workers[t].join();
  }
  EXPECT_EQ(errors.load(), 0);
  MemoCache::Global().SetLimits(0, 0);
  std::filesystem::remove(dump);

  // The persisted snapshot is loadable (atomic rename: never truncated).
  MemoCache::Global().Clear();
}

TEST_F(ServiceTest, BuiltTraceCacheSharedAcrossRacingLanes) {
  // Many lanes requesting the same fingerprint must build the trace at
  // most a handful of times (the LRU in front of BuildWorkloadCached) and
  // serve everyone the same immutable Application.
  ServiceOptions opt;
  opt.threads = 2;
  opt.max_concurrent = 2;
  opt.app_cache_entries = 2;
  SimulationService svc(opt);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 2; ++i) {
        // Three distinct fingerprints churning a 2-slot LRU from 4 threads.
        JobRequest j = Job("lru-" + std::to_string(t) + "-" +
                               std::to_string(i),
                           "NW", /*iterations=*/1, 0x7000 + (t + i) % 3);
        Response r = svc.SubmitAndWait(j);
        if (!r.ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats s = svc.stats();
  EXPECT_EQ(s.app_cache_hits + s.app_cache_misses + svc.stats().coalesced,
            8u);
  EXPECT_GE(s.app_cache_misses, 3u);  // three fingerprints, each built
}

// ---------------------------------------------------------------------------
// Supervisor crash matrix (DESIGN.md §16). The fake workers below run in
// a real forked child, exactly like the production WorkerMain — a "crash"
// is a genuine process death the supervisor has to reap and recover from.

bool ChildReadLine(int fd, std::string* out) {
  out->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 0) return !out->empty();
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (c == '\n') return true;
    out->push_back(c);
  }
}

void ChildWriteLine(int fd, const std::string& s) {
  const std::string line = s + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Answers every request line with {"id":...,"ok":true} until client EOF.
int EchoWorker(int in_fd, int out_fd) {
  std::string line;
  while (ChildReadLine(in_fd, &line)) {
    ChildWriteLine(out_fd,
                   "{\"id\":\"" + service::RequestLineId(line, Limits{}) +
                       "\",\"ok\":true}");
  }
  return 0;
}

struct SessionResult {
  int exit_code = -1;
  std::vector<std::string> replies;
  service::SupervisorStats stats;
};

/// Feeds `lines` through Serve's client transport and collects the
/// responses. The reader thread inside Serve pulls them one by one, so
/// this exercises the real journaling/forwarding path.
SessionResult RunSession(service::SupervisorOptions opt,
                         service::Supervisor::WorkerMain worker,
                         const std::vector<std::string>& lines) {
  opt.backoff_initial_ms = 1;  // keep crash loops fast under test
  opt.backoff_max_ms = 5;
  service::Supervisor sup(std::move(opt), std::move(worker));
  std::mutex mu;
  SessionResult r;
  std::size_t next = 0;
  r.exit_code = sup.Serve(
      [&](std::string* out) {
        if (next >= lines.size()) return false;
        *out = lines[next++];
        return true;
      },
      [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        r.replies.push_back(line);
      });
  r.stats = sup.stats();
  return r;
}

bool ReplyOk(const std::string& line) {
  const JsonValue v = ParseJson(line);
  const JsonValue* ok = v.Find("ok");
  return ok != nullptr && ok->AsBool();
}

std::string ReplyError(const std::string& line) {
  const JsonValue v = ParseJson(line);
  const JsonValue* err = v.Find("error");
  return err != nullptr && err->is_string() ? err->AsString() : "";
}

TEST(Supervisor, RequestLineIdCorrelatesLikeTheService) {
  EXPECT_EQ(service::RequestLineId(R"({"op":"ping","id":"p1"})", Limits{}),
            "p1");
  EXPECT_EQ(service::RequestLineId(
                R"({"op":"simulate","id":"j9","workload":"BFS"})", Limits{}),
            "j9");
  // Malformed beyond an id: correlate by nothing, like the worker would.
  EXPECT_EQ(service::RequestLineId("not json at all", Limits{}), "");
  // Malformed but carrying an id: the worker echoes it, so must we.
  EXPECT_EQ(service::RequestLineId(R"({"op":"simulate","id":"bad"})",
                                   Limits{}),
            "bad");
}

TEST(Supervisor, CleanSessionServesAndExitsZero) {
  service::SupervisorOptions opt;
  const auto r = RunSession(
      opt, [](int in, int out, const ServiceOptions&) {
        return EchoWorker(in, out);
      },
      {R"({"op":"ping","id":"a"})", R"({"op":"ping","id":"b"})",
       R"({"op":"ping","id":"c"})"});
  EXPECT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.replies.size(), 3u);
  for (const std::string& line : r.replies) EXPECT_TRUE(ReplyOk(line));
  EXPECT_EQ(r.stats.restarts, 0u);
  EXPECT_EQ(r.stats.crashed_jobs, 0u);
}

TEST(Supervisor, CrashMidJobRestartsReplaysAndAnswers) {
  // First incarnation reads one request and dies by signal; the snapshot
  // sup_restarts field tells the replacement to behave.
  service::SupervisorOptions opt;
  opt.max_restarts = 3;
  opt.max_job_retries = 1;
  const auto r = RunSession(
      opt,
      [](int in, int out, const ServiceOptions& sopt) {
        // gtest macros don't report across fork — fail by exit code.
        if (!sopt.supervised) ::_Exit(42);
        if (sopt.sup_restarts == 0) {
          std::string line;
          ChildReadLine(in, &line);
          ::raise(SIGKILL);
        }
        return EchoWorker(in, out);
      },
      {R"({"op":"ping","id":"k1"})", R"({"op":"ping","id":"k2"})"});
  EXPECT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.replies.size(), 2u);
  for (const std::string& line : r.replies) EXPECT_TRUE(ReplyOk(line));
  EXPECT_EQ(r.stats.restarts, 1u);
  EXPECT_GE(r.stats.jobs_replayed, 1u);
  EXPECT_GE(r.stats.retries, 1u);
  EXPECT_EQ(r.stats.crashed_jobs, 0u);
}

TEST(Supervisor, JobThatKeepsKillingWorkersGetsWorkerCrashed) {
  // Every incarnation dies on the poison job. After max_job_retries the
  // client gets the typed worker_crashed answer instead of another replay,
  // and the session still ends cleanly.
  service::SupervisorOptions opt;
  opt.max_restarts = 10;
  opt.max_job_retries = 1;
  const auto r = RunSession(
      opt,
      [](int in, int out, const ServiceOptions&) {
        std::string line;
        if (ChildReadLine(in, &line)) ::raise(SIGKILL);
        return EchoWorker(in, out);
      },
      {R"({"op":"ping","id":"poison"})"});
  EXPECT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.replies.size(), 1u);
  EXPECT_FALSE(ReplyOk(r.replies[0]));
  EXPECT_EQ(ReplyError(r.replies[0]), "worker_crashed");
  EXPECT_EQ(r.stats.crashed_jobs, 1u);
  EXPECT_EQ(r.stats.restarts, 2u);  // crash, retry-crash, then give up
}

TEST(Supervisor, RestartBudgetExhaustionFailsPendingAndExitsNonZero) {
  // The worker accepts the job then dies every time; with a huge per-job
  // budget it is the restart budget that runs out.
  service::SupervisorOptions opt;
  opt.max_restarts = 1;
  opt.max_job_retries = 100;
  const auto r = RunSession(
      opt,
      [](int in, int, const ServiceOptions&) {
        std::string line;
        ChildReadLine(in, &line);
        ::_Exit(7);
        return 7;
      },
      {R"({"op":"ping","id":"doomed"})"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.stats.restarts, 2u);  // the 2nd crash breached the budget
  ASSERT_EQ(r.replies.size(), 1u);
  EXPECT_EQ(ReplyError(r.replies[0]), "worker_crashed");
}

TEST(Supervisor, JournalOrphansAreCountedAndRotatedAway) {
  const std::string path =
      ::testing::TempDir() + "/supervisor_orphans.journal";
  std::filesystem::remove(path);
  {
    // A dead supervisor's journal: job 1 answered, jobs 2 and 3 in flight.
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    j.Append(R"(A 1 {"op":"ping","id":"old1"})");
    j.Append("D 1");
    j.Append(R"(A 2 {"op":"ping","id":"old2"})");
    j.Append(R"(A 3 {"op":"ping","id":"old3"})");
  }
  service::SupervisorOptions opt;
  opt.job_journal = path;
  const auto r = RunSession(
      opt, [](int in, int out, const ServiceOptions&) {
        return EchoWorker(in, out);
      },
      {R"({"op":"ping","id":"fresh"})"});
  EXPECT_EQ(r.exit_code, 0);
  // Orphans are never replayed — their clients died with the previous
  // supervisor. Only the fresh request is answered.
  ASSERT_EQ(r.replies.size(), 1u);
  EXPECT_TRUE(ReplyOk(r.replies[0]));
  EXPECT_EQ(r.stats.orphaned, 2u);
  // The rotated journal no longer carries the orphan entries.
  const JournalRecovery rec = ReadJournal(path);
  for (const std::string& record : rec.records) {
    EXPECT_EQ(record.find("old"), std::string::npos) << record;
  }
  std::filesystem::remove(path);
}

TEST(Supervisor, CorruptJobJournalIsQuarantinedNotFatal) {
  const std::string path =
      ::testing::TempDir() + "/supervisor_corrupt.journal";
  std::filesystem::remove(path + ".corrupt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this was never a journal";
  }
  service::SupervisorOptions opt;
  opt.job_journal = path;
  const auto r = RunSession(
      opt, [](int in, int out, const ServiceOptions&) {
        return EchoWorker(in, out);
      },
      {R"({"op":"ping","id":"q"})"});
  EXPECT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.replies.size(), 1u);
  EXPECT_TRUE(ReplyOk(r.replies[0]));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
}

}  // namespace
}  // namespace swiftsim
