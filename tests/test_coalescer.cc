#include "mem/coalescer.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace swiftsim {
namespace {

std::vector<Addr> LaneAddrs(Addr base, std::uint64_t stride, unsigned n = 32) {
  std::vector<Addr> a;
  for (unsigned i = 0; i < n; ++i) a.push_back(base + i * stride);
  return a;
}

TEST(Coalescer, FullyCoalescedIsOneLine) {
  const auto acc = Coalesce(LaneAddrs(0x1000, 4), 4, 128, 32);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].line_addr, 0x1000u);
  EXPECT_EQ(acc[0].sector_mask, 0xFu);  // all four sectors
}

TEST(Coalescer, HalfWarpTouchesTwoSectors) {
  const auto acc = Coalesce(LaneAddrs(0x1000, 4, 16), 4, 128, 32);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].sector_mask, 0x3u);  // 64 bytes = sectors 0 and 1
}

TEST(Coalescer, EightByteElementsSpanTwoLines) {
  const auto acc = Coalesce(LaneAddrs(0x1000, 8), 8, 128, 32);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].line_addr, 0x1000u);
  EXPECT_EQ(acc[1].line_addr, 0x1080u);
  EXPECT_EQ(acc[0].sector_mask, 0xFu);
  EXPECT_EQ(acc[1].sector_mask, 0xFu);
}

TEST(Coalescer, StridedWorstCaseOneLinePerLane) {
  const auto acc = Coalesce(LaneAddrs(0, 2048), 4, 128, 32);
  EXPECT_EQ(acc.size(), 32u);
  for (const auto& a : acc) EXPECT_EQ(PopCount(a.sector_mask), 1u);
}

TEST(Coalescer, BroadcastIsOneSector) {
  std::vector<Addr> same(32, 0x2008);
  const auto acc = Coalesce(same, 4, 128, 32);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].line_addr, 0x2000u);
  EXPECT_EQ(acc[0].sector_mask, 0x1u);
}

TEST(Coalescer, UnalignedAccessSpansSectorBoundary) {
  // 4-byte access starting 2 bytes before a sector boundary covers both.
  const auto acc = Coalesce({0x101E}, 4, 128, 32);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].sector_mask, 0x3u);  // sectors 0 and 1
}

TEST(Coalescer, AccessSpanningLineBoundaryMakesTwoEntries) {
  const auto acc = Coalesce({0x107E}, 4, 128, 32);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].line_addr, 0x1000u);
  EXPECT_EQ(acc[0].sector_mask, 0x8u);  // last sector of first line
  EXPECT_EQ(acc[1].line_addr, 0x1080u);
  EXPECT_EQ(acc[1].sector_mask, 0x1u);
}

TEST(Coalescer, OrderFollowsFirstTouchingLane) {
  // Lane 0 touches the higher line first: output preserves lane order.
  const auto acc = Coalesce({0x2000, 0x1000}, 4, 128, 32);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].line_addr, 0x2000u);
  EXPECT_EQ(acc[1].line_addr, 0x1000u);
}

TEST(Coalescer, EmptyInputGivesNoAccesses) {
  EXPECT_TRUE(Coalesce({}, 4, 128, 32).empty());
}

TEST(Coalescer, DuplicateSectorsMergeAcrossLanes) {
  std::vector<Addr> addrs = {0x1000, 0x1004, 0x1008, 0x1020, 0x1024};
  const auto acc = Coalesce(addrs, 4, 128, 32);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].sector_mask, 0x3u);
}

}  // namespace
}  // namespace swiftsim
