#include "common/bitutil.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

TEST(BitUtil, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_TRUE(IsPow2(1ull << 63));
  EXPECT_FALSE(IsPow2((1ull << 63) + 1));
}

TEST(BitUtil, Log2) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(128), 7u);
  EXPECT_EQ(Log2(1ull << 40), 40u);
}

TEST(BitUtil, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 128), 0u);
  EXPECT_EQ(AlignUp(1, 128), 128u);
  EXPECT_EQ(AlignUp(128, 128), 128u);
  EXPECT_EQ(AlignDown(127, 128), 0u);
  EXPECT_EQ(AlignDown(128, 128), 128u);
  EXPECT_EQ(AlignDown(255, 128), 128u);
}

TEST(BitUtil, PopCount) {
  EXPECT_EQ(PopCount(0), 0u);
  EXPECT_EQ(PopCount(0xff), 8u);
  EXPECT_EQ(PopCount(~0ull), 64u);
}

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

TEST(BitUtil, HashMixSpreads) {
  // Consecutive inputs should differ in many bits.
  unsigned weak = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto d = HashMix(i) ^ HashMix(i + 1);
    if (PopCount(d) < 16) ++weak;
  }
  EXPECT_LT(weak, 5u);
  EXPECT_EQ(HashMix(12345), HashMix(12345));  // deterministic
}

}  // namespace
}  // namespace swiftsim
