#include "core/scoreboard.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

CompactInstr Instr(std::uint8_t dst,
                   std::initializer_list<std::uint8_t> srcs) {
  CompactInstr ins;
  ins.op = Opcode::kIAdd;
  ins.dst = dst;
  unsigned i = 0;
  for (std::uint8_t r : srcs) ins.src[i++] = r;
  return ins;
}

TEST(Scoreboard, FreshWarpCanIssue) {
  Scoreboard sb(4);
  EXPECT_TRUE(sb.CanIssue(0, Instr(5, {1, 2})));
  EXPECT_EQ(sb.PendingCount(0), 0u);
}

TEST(Scoreboard, RawHazardBlocks) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(5, {1}));
  EXPECT_FALSE(sb.CanIssue(0, Instr(6, {5})));       // reads pending r5
  EXPECT_TRUE(sb.CanIssue(0, Instr(6, {7})));        // unrelated
  sb.OnWriteback(0, 5);
  EXPECT_TRUE(sb.CanIssue(0, Instr(6, {5})));
}

TEST(Scoreboard, WawHazardBlocks) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(5, {1}));
  EXPECT_FALSE(sb.CanIssue(0, Instr(5, {2})));  // writes pending r5
  sb.OnWriteback(0, 5);
  EXPECT_TRUE(sb.CanIssue(0, Instr(5, {2})));
}

TEST(Scoreboard, WarpsAreIndependent) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(5, {1}));
  EXPECT_FALSE(sb.CanIssue(0, Instr(6, {5})));
  EXPECT_TRUE(sb.CanIssue(1, Instr(6, {5})));
}

TEST(Scoreboard, NoDestInstrNeverSetsPending) {
  Scoreboard sb(4);
  CompactInstr store = Instr(kNoReg, {5});
  sb.OnIssue(0, store);
  EXPECT_EQ(sb.PendingCount(0), 0u);
}

TEST(Scoreboard, SecondSourceChecked) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(9, {}));
  EXPECT_FALSE(sb.CanIssue(0, Instr(6, {1, 9})));  // r9 is the 2nd source
  EXPECT_TRUE(sb.CanIssue(0, Instr(6, {1, 2})));   // unrelated regs
}

TEST(Scoreboard, ResetClearsSlot) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(5, {}));
  sb.OnIssue(0, Instr(6, {}));
  EXPECT_EQ(sb.PendingCount(0), 2u);
  sb.Reset(0);
  EXPECT_EQ(sb.PendingCount(0), 0u);
  EXPECT_TRUE(sb.CanIssue(0, Instr(7, {5, 6})));
}

TEST(Scoreboard, WritebackOfNoRegIsNoop) {
  Scoreboard sb(4);
  sb.OnIssue(0, Instr(5, {}));
  sb.OnWriteback(0, kNoReg);
  EXPECT_EQ(sb.PendingCount(0), 1u);
}

TEST(Scoreboard, HighRegisterNumbers) {
  Scoreboard sb(2);
  sb.OnIssue(1, Instr(254, {}));
  EXPECT_FALSE(sb.CanIssue(1, Instr(10, {254})));
  sb.OnWriteback(1, 254);
  EXPECT_TRUE(sb.CanIssue(1, Instr(10, {254})));
}

}  // namespace
}  // namespace swiftsim
