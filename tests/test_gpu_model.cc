// GpuModel integration tests: whole-chip runs across the four simulator
// configurations on small workloads.
#include "sim/gpu_model.h"

#include <gtest/gtest.h>

#include "analytical/cache_prepass.h"
#include "config/presets.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu(unsigned sms = 4) {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = sms;
  cfg.num_mem_partitions = 2;
  cfg.Validate();
  return cfg;
}

Application SmallApp(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.03;
  return BuildWorkload(name, s);
}

class GpuModelLevels
    : public ::testing::TestWithParam<std::tuple<SimLevel, const char*>> {};

TEST_P(GpuModelLevels, RunsToCompletionWithAllInstructionsIssued) {
  const auto [level, app_name] = GetParam();
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp(app_name);
  const ModelSelection sel = SelectionFor(level);
  std::unique_ptr<MemProfile> profile;
  if (sel.mem == MemModelKind::kAnalytical) {
    profile = std::make_unique<MemProfile>(BuildMemProfile(app, cfg));
  }
  GpuModel model(cfg, sel, profile.get());
  const SimResult r = model.RunApplication(app);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_EQ(r.instructions, app.TotalInstrs());
  EXPECT_EQ(r.kernels.size(), app.kernels.size());
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndApps, GpuModelLevels,
    ::testing::Combine(::testing::Values(SimLevel::kSilicon,
                                         SimLevel::kDetailed,
                                         SimLevel::kSwiftSimBasic,
                                         SimLevel::kSwiftSimMemory),
                       ::testing::Values("GEMM", "SM", "BFS", "NW")),
    [](const auto& info) {
      std::string name = ToString(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GpuModel, DeterministicAcrossRuns) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("HOTSPOT");
  for (SimLevel level : {SimLevel::kDetailed, SimLevel::kSwiftSimBasic}) {
    GpuModel a(cfg, SelectionFor(level));
    GpuModel b(cfg, SelectionFor(level));
    EXPECT_EQ(a.RunApplication(app).total_cycles,
              b.RunApplication(app).total_cycles)
        << ToString(level);
  }
}

TEST(GpuModel, HybridAluBarelyChangesCycles) {
  // Swapping the ALU module implementation (the paper's §III-D1 example)
  // must preserve cycle counts closely: contention is still tracked
  // cycle-accurately.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("HOTSPOT");
  GpuModel detailed(cfg, SelectionFor(SimLevel::kDetailed));
  GpuModel basic(cfg, SelectionFor(SimLevel::kSwiftSimBasic));
  const Cycle cd = detailed.RunApplication(app).total_cycles;
  const Cycle cb = basic.RunApplication(app).total_cycles;
  const double rel = std::abs(static_cast<double>(cd) -
                              static_cast<double>(cb)) /
                     static_cast<double>(cd);
  EXPECT_LT(rel, 0.15);
}

TEST(GpuModel, SiliconEffectsAddCycles) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("GEMM");
  GpuModel silicon(cfg, SelectionFor(SimLevel::kSilicon));
  GpuModel detailed(cfg, SelectionFor(SimLevel::kDetailed));
  EXPECT_GT(silicon.RunApplication(app).total_cycles,
            detailed.RunApplication(app).total_cycles);
}

TEST(GpuModel, MoreSmsRunFaster) {
  const Application app = SmallApp("SM");
  GpuModel narrow(SmallGpu(2), SelectionFor(SimLevel::kSwiftSimBasic));
  GpuModel wide(SmallGpu(8), SelectionFor(SimLevel::kSwiftSimBasic));
  EXPECT_GT(narrow.RunApplication(app).total_cycles,
            wide.RunApplication(app).total_cycles);
}

TEST(GpuModel, MultiKernelAppsAccumulateCycles) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("ATAX");  // two kernels
  GpuModel model(cfg, SelectionFor(SimLevel::kSwiftSimBasic));
  const SimResult r = model.RunApplication(app);
  ASSERT_EQ(r.kernels.size(), 2u);
  EXPECT_EQ(r.kernels[0].cycles + r.kernels[1].cycles, r.total_cycles);
  EXPECT_GT(r.kernels[0].cycles, 0u);
  EXPECT_GT(r.kernels[1].cycles, 0u);
}

TEST(GpuModel, MetricsExposePerModuleCounters) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("GEMM");
  GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
  const SimResult r = model.RunApplication(app);
  EXPECT_GT(r.metrics.at("sm0.issued_instrs"), 0u);
  EXPECT_GT(r.metrics.at("sm0.l1.accesses"), 0u);
  EXPECT_GT(r.metrics.at("noc.req.injected"), 0u);
  std::uint64_t dram_reads = 0;
  for (const auto& [key, value] : r.metrics) {
    if (key.find("dram.") == 0 && key.find(".reads") != std::string::npos) {
      dram_reads += value;
    }
  }
  EXPECT_GT(dram_reads, 0u);
}

TEST(GpuModel, AnalyticalModeNeedsProfile) {
  const GpuConfig cfg = SmallGpu();
  EXPECT_THROW(GpuModel(cfg, SelectionFor(SimLevel::kSwiftSimMemory)),
               SimError);
}

TEST(GpuModel, RejectsInfeasibleKernel) {
  GpuConfig cfg = SmallGpu();
  cfg.max_warps_per_sm = 4;  // tiny SM
  cfg.max_threads_per_sm = 128;
  cfg.Validate();
  const Application app = SmallApp("GEMM");  // 8 warps per CTA
  GpuModel model(cfg, SelectionFor(SimLevel::kSwiftSimBasic));
  EXPECT_THROW(model.RunApplication(app), SimError);
}

TEST(GpuModel, StoresDrainBeforeCompletion) {
  // After RunKernel returns, no write traffic may remain anywhere.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("II");  // store-heavy
  GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
  const SimResult r = model.RunApplication(app);
  std::uint64_t writes = 0;
  for (const auto& [key, value] : r.metrics) {
    if (key.find("dram.") == 0 && key.find(".writes") != std::string::npos) {
      writes += value;
    }
  }
  EXPECT_GT(writes, 0u);  // stores actually reached DRAM
}

}  // namespace
}  // namespace swiftsim
