// Property tests relating the timing cache to the functional cache and
// sweeping cache geometries (parameterized gtest).
#include <gtest/gtest.h>

#include "analytical/functional_cache.h"
#include "common/rng.h"
#include "mem/cache.h"

namespace swiftsim {
namespace {

CacheParams Geometry(std::uint64_t size, unsigned assoc, bool streaming) {
  CacheParams p;
  p.size_bytes = size;
  p.assoc = assoc;
  p.line_bytes = 128;
  p.sector_bytes = 32;
  p.banks = 4;
  p.mshr_entries = 64;
  p.mshr_max_merge = 8;
  p.write_policy = WritePolicy::kWriteThrough;
  p.streaming = streaming;
  p.latency = 4;
  return p;
}

/// Drives the timing cache with instantly-served fills so its steady-state
/// hit behavior is comparable to the functional model.
class InstantCache {
 public:
  explicit InstantCache(const CacheParams& p) : cache_("p", p, 0) {}

  bool AccessLoad(Addr line, std::uint32_t sectors) {
    cache_.BeginCycle(++now_);
    MemRequest req;
    req.line_addr = line;
    req.sector_mask = sectors;
    req.id = ++id_;
    // Retry until accepted (bank budget resets each cycle).
    while (!cache_.Access(req, now_)) cache_.BeginCycle(++now_);
    const bool hit = cache_.stats().hits > hits_before_;
    hits_before_ = cache_.stats().hits;
    // Serve any miss instantly.
    auto& mq = cache_.miss_queue();
    while (!mq.empty()) {
      const MemRequest& down = mq.front();
      if (!down.is_store()) {
        cache_.Fill(MemResponse{down.id, down.line_addr, down.sector_mask,
                                down.sm},
                    now_);
      }
      mq.pop_front();
    }
    // Drain responses so quiescence holds.
    cache_.BeginCycle(now_ + 5);
    now_ += 5;
    cache_.responses().clear();
    return hit;
  }

  const CacheStats& stats() const { return cache_.stats(); }

 private:
  SectorCache cache_;
  Cycle now_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t hits_before_ = 0;
};

struct GeomCase {
  std::uint64_t size;
  unsigned assoc;
  bool streaming;
};

class CacheEquivalence : public ::testing::TestWithParam<GeomCase> {};

TEST_P(CacheEquivalence, TimingCacheMatchesFunctionalWithInstantFills) {
  // With fills served instantly, every access sequence must produce the
  // same hit/miss decisions in the timing cache (LRU) and the functional
  // cache — they implement the same replacement policy.
  const GeomCase g = GetParam();
  InstantCache timing(Geometry(g.size, g.assoc, g.streaming));
  FunctionalCache functional(Geometry(g.size, g.assoc, g.streaming));
  Rng rng(42);
  unsigned disagreements = 0;
  for (int i = 0; i < 3000; ++i) {
    const Addr line = rng.Below(256) * 128;
    const std::uint32_t sectors = 1u << rng.Below(4);
    const bool t = timing.AccessLoad(line, sectors);
    const bool f = functional.AccessLoad(line, sectors);
    if (t != f) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalence,
    ::testing::Values(GeomCase{8 * 1024, 2, true},
                      GeomCase{8 * 1024, 2, false},
                      GeomCase{16 * 1024, 4, true},
                      GeomCase{32 * 1024, 8, false},
                      GeomCase{64 * 1024, 4, true}),
    [](const auto& info) {
      return std::to_string(info.param.size / 1024) + "k_a" +
             std::to_string(info.param.assoc) +
             (info.param.streaming ? "_stream" : "_resv");
    });

class CacheSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheSizeSweep, HitRateGrowsWithCapacityUnderReuse) {
  // Cyclic sweep over a 32KB footprint: hit rate must be monotone in
  // cache size (LRU inclusion property at fixed associativity geometry).
  InstantCache cache(Geometry(GetParam(), 4, true));
  for (int round = 0; round < 6; ++round) {
    for (Addr line = 0; line < 32 * 1024; line += 128) {
      cache.AccessLoad(line, 0xF);
    }
  }
  const double rate =
      static_cast<double>(cache.stats().hits) / cache.stats().load_accesses;
  // Store for cross-param comparison via a static map.
  static std::map<std::uint64_t, double>* rates =
      new std::map<std::uint64_t, double>();
  (*rates)[GetParam()] = rate;
  for (const auto& [size, r] : *rates) {
    if (size < GetParam()) {
      EXPECT_LE(r, rate + 1e-9) << size;
    }
    if (size > GetParam()) {
      EXPECT_GE(r, rate - 1e-9) << size;
    }
  }
  // A cache at least as large as the footprint keeps everything.
  if (GetParam() >= 32 * 1024) {
    EXPECT_GT(rate, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep,
                         ::testing::Values(4 * 1024, 8 * 1024, 16 * 1024,
                                           32 * 1024, 64 * 1024),
                         [](const auto& info) {
                           return std::to_string(info.param / 1024) + "k";
                         });

TEST(CacheProperties, SectorRequestsNeverExceedLineFootprint) {
  // Streaming cache, random sector masks: resident sectors never report
  // hits they were not filled for (no phantom data).
  InstantCache cache(Geometry(8 * 1024, 2, true));
  FunctionalCache shadow(Geometry(8 * 1024, 2, true));
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Addr line = rng.Below(128) * 128;
    const std::uint32_t sectors = static_cast<std::uint32_t>(
        1 + rng.Below(15));
    EXPECT_EQ(cache.AccessLoad(line, sectors),
              shadow.AccessLoad(line, sectors));
  }
}

}  // namespace
}  // namespace swiftsim
