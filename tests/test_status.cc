#include "common/status.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace swiftsim {
namespace {

TEST(Status, CheckPassesOnTrue) {
  EXPECT_NO_THROW(SS_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Status, CheckThrowsWithMessage) {
  try {
    SS_CHECK(false, "the message");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_status.cc"), std::string::npos);
  }
}

TEST(Status, AssertThrows) {
  EXPECT_THROW(SS_ASSERT(false), SimError);
  EXPECT_NO_THROW(SS_ASSERT(true));
}

TEST(Status, CheckConditionEvaluatedOnce) {
  int calls = 0;
  auto f = [&] {
    ++calls;
    return true;
  };
  SS_CHECK(f(), "once");
  EXPECT_EQ(calls, 1);
}

TEST(Status, ScopedSimContextEnrichesErrors) {
  std::uint64_t cycle = 1234;
  ScopedSimContext ctx("vecadd", &cycle);
  ScopedSimContext::SetSm(3);
  cycle = 4321;  // read through the pointer at throw time
  try {
    SS_CHECK(false, "boom");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("kernel=vecadd"), std::string::npos);
    EXPECT_NE(what.find("sm=3"), std::string::npos);
    EXPECT_NE(what.find("cycle=4321"), std::string::npos);
  }
  ScopedSimContext::SetSm(-1);
}

TEST(Status, NoContextNoAnnotation) {
  try {
    SS_CHECK(false, "bare");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("kernel="), std::string::npos);
    EXPECT_EQ(what.find("cycle="), std::string::npos);
  }
}

TEST(Status, ContextRestoredAfterScopeExit) {
  std::uint64_t outer_cycle = 7;
  ScopedSimContext outer("outer", &outer_cycle);
  {
    std::uint64_t inner_cycle = 9;
    ScopedSimContext inner("inner", &inner_cycle);
  }
  try {
    SS_CHECK(false, "after inner scope");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel=outer"), std::string::npos);
    EXPECT_EQ(what.find("kernel=inner"), std::string::npos);
  }
}

TEST(Status, SimHangErrorCarriesKindAndDump) {
  const SimHangError err(SimHangError::Kind::kNoProgress, "stalled",
                         "/tmp/dump.json");
  EXPECT_EQ(err.kind(), SimHangError::Kind::kNoProgress);
  EXPECT_EQ(err.dump_path(), "/tmp/dump.json");
  EXPECT_STREQ(err.what(), "stalled");
  // A SimHangError is a SimError: existing catch sites keep working.
  const SimError& base = err;
  EXPECT_STREQ(base.what(), "stalled");
}

TEST(Log, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SS_LOG(kInfo) << "this line is filtered out";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace swiftsim
