#include "common/status.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace swiftsim {
namespace {

TEST(Status, CheckPassesOnTrue) {
  EXPECT_NO_THROW(SS_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Status, CheckThrowsWithMessage) {
  try {
    SS_CHECK(false, "the message");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_status.cc"), std::string::npos);
  }
}

TEST(Status, AssertThrows) {
  EXPECT_THROW(SS_ASSERT(false), SimError);
  EXPECT_NO_THROW(SS_ASSERT(true));
}

TEST(Status, CheckConditionEvaluatedOnce) {
  int calls = 0;
  auto f = [&] {
    ++calls;
    return true;
  };
  SS_CHECK(f(), "once");
  EXPECT_EQ(calls, 1);
}

TEST(Log, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SS_LOG(kInfo) << "this line is filtered out";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace swiftsim
