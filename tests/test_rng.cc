#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace swiftsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // splitmix64 seeding means seed and seed+1 give unrelated streams.
  Rng a(1000), b(1001);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.Below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
  Rng z(18);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(z.Bernoulli(0.0));
}

TEST(Rng, ReseedResets) {
  Rng r(21);
  const auto first = r.Next();
  r.Next();
  r.Seed(21);
  EXPECT_EQ(r.Next(), first);
}

}  // namespace
}  // namespace swiftsim
