#include "mem/cache.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

CacheParams TinyL1() {
  CacheParams p;
  p.size_bytes = 4 * 128 * 2;  // 4 sets x 2 ways
  p.assoc = 2;
  p.line_bytes = 128;
  p.sector_bytes = 32;
  p.banks = 2;
  p.mshr_entries = 4;
  p.mshr_max_merge = 2;
  p.write_policy = WritePolicy::kWriteThrough;
  p.streaming = true;
  p.latency = 4;
  return p;
}

CacheParams TinyL2() {
  CacheParams p = TinyL1();
  p.write_policy = WritePolicy::kWriteBack;
  p.streaming = false;
  return p;
}

MemRequest Load(Addr line, std::uint32_t sectors, std::uint64_t id) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = sectors;
  r.id = id;
  return r;
}

MemRequest Store(Addr line, std::uint32_t sectors) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = sectors;
  r.type = MemAccessType::kStore;
  return r;
}

/// Drives the cache `n` cycles forward collecting responses.
std::vector<MemResponse> Drain(SectorCache& c, Cycle& now, unsigned n) {
  std::vector<MemResponse> out;
  for (unsigned i = 0; i < n; ++i) {
    c.BeginCycle(++now);
    while (!c.responses().empty()) {
      out.push_back(c.responses().front());
      c.responses().pop_front();
    }
  }
  return out;
}

TEST(SectorCache, MissForwardsThenFillRespondsThenHits) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x3, 42), now));
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_EQ(cache.miss_queue().size(), 1u);
  const MemRequest down = cache.miss_queue().front();
  cache.miss_queue().pop_front();
  EXPECT_EQ(down.line_addr, 0x1000u);
  EXPECT_EQ(down.sector_mask, 0x3u);
  EXPECT_NE(down.id, 42u);  // cache mints its own downstream id

  cache.Fill(MemResponse{down.id, 0x1000, 0x3, 0}, now);
  const auto resp = Drain(cache, now, 3);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].id, 42u);

  // Subsequent access hits with the configured latency.
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x3, 43), now));
  EXPECT_EQ(cache.stats().hits, 1u);
  auto hit = Drain(cache, now, TinyL1().latency + 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 43u);
}

TEST(SectorCache, HitLatencyIsExact) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  cache.Access(Load(0x1000, 0x1, 1), now);
  cache.Fill(MemResponse{cache.miss_queue().front().id, 0x1000, 0x1, 0},
             now);
  cache.miss_queue().clear();
  Drain(cache, now, 2);

  const Cycle issue = now;
  cache.Access(Load(0x1000, 0x1, 9), now);
  // Not ready one cycle early.
  for (Cycle c = issue + 1; c < issue + TinyL1().latency; ++c) {
    cache.BeginCycle(c);
    EXPECT_TRUE(cache.responses().empty()) << c;
  }
  cache.BeginCycle(issue + TinyL1().latency);
  ASSERT_EQ(cache.responses().size(), 1u);
}

TEST(SectorCache, MshrMergesSecondMissSameLine) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x1, 1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x1, 2), now));
  EXPECT_EQ(cache.stats().mshr_merges, 1u);
  // Only ONE downstream request (the second merged).
  EXPECT_EQ(cache.miss_queue().size(), 1u);
  cache.Fill(MemResponse{cache.miss_queue().front().id, 0x1000, 0x1, 0},
             now);
  const auto resp = Drain(cache, now, 3);
  EXPECT_EQ(resp.size(), 2u);  // both waiters woken
}

TEST(SectorCache, MergeLimitRejects) {
  SectorCache cache("t", TinyL1(), 1);  // merge limit 2
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x1, 1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Load(0x1000, 0x1, 2), now));
  cache.BeginCycle(++now);
  EXPECT_FALSE(cache.Access(Load(0x1000, 0x1, 3), now));
  EXPECT_EQ(cache.stats().mshr_stalls, 1u);
}

TEST(SectorCache, BankConflictLimitsPerCycleAccesses) {
  SectorCache cache("t", TinyL1(), 1);  // 2 banks
  Cycle now = 0;
  cache.BeginCycle(now);
  // Lines 0x0000 and 0x0100 map to banks 0 and... line/128 % 2.
  ASSERT_TRUE(cache.Access(Load(0x0000, 0x1, 1), now));
  EXPECT_FALSE(cache.Access(Load(0x0200, 0x1, 2), now));  // same bank
  EXPECT_EQ(cache.stats().bank_conflicts, 1u);
  ASSERT_TRUE(cache.Access(Load(0x0080, 0x1, 3), now));  // other bank
  // Next cycle the bank is free again.
  cache.BeginCycle(++now);
  EXPECT_TRUE(cache.Access(Load(0x0200, 0x1, 2), now));
}

TEST(SectorCache, WriteThroughForwardsStores) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Store(0x1000, 0x3), now));
  EXPECT_EQ(cache.stats().write_through, 1u);
  ASSERT_EQ(cache.miss_queue().size(), 1u);
  EXPECT_TRUE(cache.miss_queue().front().is_store());
  EXPECT_EQ(cache.miss_queue().front().id, 0u);  // fire-and-forget
}

TEST(SectorCache, WriteBackDirtyEvictionEmitsWriteback) {
  SectorCache cache("t", TinyL2(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  // Three stores to the same 2-way set (set 0): third evicts a dirty line.
  ASSERT_TRUE(cache.Access(Store(0x0000, 0x1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Store(0x0400, 0x1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Store(0x0800, 0x1), now));
  EXPECT_EQ(cache.stats().writebacks, 1u);
  ASSERT_FALSE(cache.miss_queue().empty());
  EXPECT_TRUE(cache.miss_queue().front().is_store());
}

TEST(SectorCache, WriteBackStoreHitNoTraffic) {
  SectorCache cache("t", TinyL2(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Store(0x1000, 0x1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Store(0x1000, 0x2), now));
  EXPECT_TRUE(cache.miss_queue().empty());  // absorbed, dirty in place
}

TEST(SectorCache, NonStreamingReservationFailure) {
  CacheParams p = TinyL2();
  p.mshr_entries = 16;
  p.mshr_max_merge = 8;
  SectorCache cache("t", p, 1);
  Cycle now = 0;
  // Two outstanding misses reserve both ways of set 0; a third line in the
  // same set must be rejected with a reservation failure.
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Load(0x0000, 0x1, 1), now));
  cache.BeginCycle(++now);
  ASSERT_TRUE(cache.Access(Load(0x0400, 0x1, 2), now));
  cache.BeginCycle(++now);
  EXPECT_FALSE(cache.Access(Load(0x0800, 0x1, 3), now));
  EXPECT_EQ(cache.stats().reservation_fails, 1u);
}

TEST(SectorCache, StreamingNeverReservationFails) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  // Three misses to the same 2-way set all accepted (allocate-on-fill).
  for (Addr line : {0x0000ull, 0x0400ull, 0x0800ull}) {
    cache.BeginCycle(++now);
    ASSERT_TRUE(cache.Access(Load(line, 0x1, line + 1), now));
  }
  EXPECT_EQ(cache.stats().reservation_fails, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(SectorCache, OutputBackpressureRejects) {
  CacheParams p = TinyL1();
  SectorCache cache("t", p, 1, /*out_capacity=*/1);
  Cycle now = 0;
  cache.BeginCycle(now);
  ASSERT_TRUE(cache.Access(Load(0x0000, 0x1, 1), now));
  cache.BeginCycle(++now);
  EXPECT_FALSE(cache.Access(Load(0x1000, 0x1, 2), now));
  EXPECT_EQ(cache.stats().out_stalls, 1u);
}

TEST(SectorCache, QuiescentLifecycle) {
  SectorCache cache("t", TinyL1(), 1);
  Cycle now = 0;
  cache.BeginCycle(now);
  EXPECT_TRUE(cache.quiescent());
  cache.Access(Load(0x1000, 0x1, 1), now);
  EXPECT_FALSE(cache.quiescent());
  const auto id = cache.miss_queue().front().id;
  cache.miss_queue().clear();
  cache.Fill(MemResponse{id, 0x1000, 0x1, 0}, now);
  Drain(cache, now, 3);
  EXPECT_TRUE(cache.quiescent());
}

}  // namespace
}  // namespace swiftsim
