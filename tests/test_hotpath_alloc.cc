// Zero-allocation regression gate for the cycle-accurate hot path
// (DESIGN.md §8): after a warm-up kernel has grown every pool, ring
// buffer and flat map to its high-water capacity, N mid-kernel cycles of
// an identical second kernel must perform ZERO heap allocations. Counting
// global operator new/delete overrides make any regression (a stray
// std::function capture, a std::deque block, an unreserved vector) an
// immediate test failure rather than a silent throughput loss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "config/presets.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "workloads/workload.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace swiftsim {
namespace {

TEST(HotPathAlloc, WarmDetailedModelCyclesAreAllocationFree) {
  const GpuConfig gpu = Rtx2080TiConfig();
  const ModelSelection sel = SelectionFor(SimLevel::kDetailed);
  const WorkloadScale scale{0.35, 0x5eed5eedULL};

  // Two independently built but bit-identical traces: one to warm every
  // pool/ring/map to its high-water mark, one to measure.
  const Application warm_app = BuildWorkload("GEMM", scale);
  const Application meas_app = BuildWorkload("GEMM", scale);
  ASSERT_FALSE(warm_app.kernels.empty());

  GpuModel model(gpu, sel);
  model.RunKernel(*warm_app.kernels[0]);  // warm-up: allocations expected

  // Drive the identical second kernel cycle by cycle (the same loop
  // RunKernel uses for the detailed model, which never fast-forwards).
  const KernelTrace& kernel = *meas_app.kernels[0];
  model.BeginKernel(kernel);
  Cycle now = model.now();
  auto tick = [&] {
    model.AssignPendingCtas();
    model.TickSmRange(0, gpu.num_sms, now);
    model.TickSharedMemory(now);
    ++now;
  };

  // Settle: let the second kernel ramp up to steady state.
  constexpr int kSettleCycles = 500;
  constexpr int kCountedCycles = 2000;
  for (int i = 0; i < kSettleCycles && !model.KernelDone(); ++i) tick();
  ASSERT_FALSE(model.KernelDone()) << "workload too small to measure";

  g_allocations.store(0);
  g_counting.store(true);
  int counted = 0;
  for (; counted < kCountedCycles && !model.KernelDone(); ++counted) tick();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "heap allocations on the warmed-up detailed hot path";
  EXPECT_GE(counted, 1000) << "measurement window too short to be meaningful";

  // Drain so the model is consistent if more checks are added later.
  while (!model.KernelDone()) tick();
  model.SyncClock(now);
}

}  // namespace
}  // namespace swiftsim
