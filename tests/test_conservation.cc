// Cross-module conservation properties: whole-chip runs must preserve
// event counts between producer and consumer modules — the invariants the
// fixed module interfaces of paper §III-B2 are supposed to guarantee.
#include <gtest/gtest.h>

#include "config/presets.h"
#include "sim/gpu_model.h"
#include "trace/trace_stats.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

std::map<std::string, std::uint64_t> RunDetailed(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.04;
  const Application app = BuildWorkload(name, s);
  GpuModel model(SmallGpu(), SelectionFor(SimLevel::kDetailed));
  return model.RunApplication(app).metrics;
}

std::uint64_t Sum(const std::map<std::string, std::uint64_t>& m,
                  const std::string& prefix, const std::string& suffix) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : m) {
    if (key.rfind(prefix, 0) != 0) continue;
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      sum += value;
    }
  }
  return sum;
}

class Conservation : public ::testing::TestWithParam<const char*> {};

TEST_P(Conservation, IssuedMemInstrsMatchTheTrace) {
  WorkloadScale s;
  s.scale = 0.04;
  const Application app = BuildWorkload(GetParam(), s);
  std::uint64_t trace_mem = 0;
  for (const auto& k : app.kernels) {
    trace_mem += ComputeTraceStats(*k).mem_instrs;
  }
  GpuModel model(SmallGpu(), SelectionFor(SimLevel::kDetailed));
  const SimResult r = model.RunApplication(app);
  EXPECT_EQ(Sum(r.metrics, "sm", ".issued_mem"), trace_mem);
}

TEST_P(Conservation, L2AcceptsEveryInjectedRequest) {
  // After drain, the L2 slices accepted exactly what the request network
  // carried (every ejected request is retried until accepted; none lost).
  const auto m = RunDetailed(GetParam());
  EXPECT_EQ(Sum(m, "l2.", ".accesses"), m.at("noc.req.injected"));
}

TEST_P(Conservation, L1AccountingIsClosed) {
  const auto m = RunDetailed(GetParam());
  const std::uint64_t accesses = Sum(m, "sm", ".l1.accesses");
  const std::uint64_t hits = Sum(m, "sm", ".l1.hits");
  const std::uint64_t misses = Sum(m, "sm", ".l1.misses") +
                               Sum(m, "sm", ".l1.sector_misses");
  // Every accepted L1 LOAD is a hit or a (sector) miss; stores are the
  // remainder of `accesses`.
  EXPECT_LE(hits + misses, accesses);
  EXPECT_GT(accesses, 0u);
}

TEST_P(Conservation, DramReadsOnlyFromL2LoadMisses) {
  const auto m = RunDetailed(GetParam());
  // Each full or sector L2 load miss generates at most one downstream
  // read; reads never appear without a miss.
  const std::uint64_t l2_load_misses =
      Sum(m, "l2.", ".misses") + Sum(m, "l2.", ".sector_misses");
  const std::uint64_t dram_reads = Sum(m, "dram.", ".reads");
  EXPECT_LE(dram_reads, l2_load_misses);
  if (l2_load_misses > 0) {
    EXPECT_GT(dram_reads, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, Conservation,
                         ::testing::Values("GEMM", "SM", "BFS", "ADI",
                                           "PAGERANK"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Conservation, AllWarpsRetireInEveryLevel) {
  WorkloadScale s;
  s.scale = 0.04;
  const Application app = BuildWorkload("NW", s);
  std::uint64_t total_ctas = 0;
  for (const auto& k : app.kernels) total_ctas += k->info().num_ctas;
  for (SimLevel level : {SimLevel::kDetailed, SimLevel::kSwiftSimBasic}) {
    GpuModel model(SmallGpu(), SelectionFor(level));
    const SimResult r = model.RunApplication(app);
    EXPECT_EQ(Sum(r.metrics, "sm", ".completed_ctas"), total_ctas)
        << ToString(level);
  }
}

}  // namespace
}  // namespace swiftsim
