#include "config/ini.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto ini = IniFile::ParseString(
      "top = 1\n"
      "[gpu]\n"
      "num_sms = 68\n"
      "name = rtx2080ti\n"
      "[l1]\n"
      "size_bytes = 65536\n");
  EXPECT_EQ(ini.GetInt("top"), 1);
  EXPECT_EQ(ini.GetInt("gpu.num_sms"), 68);
  EXPECT_EQ(ini.GetString("gpu.name"), "rtx2080ti");
  EXPECT_EQ(ini.GetUint("l1.size_bytes"), 65536u);
}

TEST(Ini, CommentsAndBlankLines) {
  const auto ini = IniFile::ParseString(
      "# full line comment\n"
      "\n"
      "a = 1   # trailing comment\n"
      "b = 2   ; semicolon comment\n"
      "; another\n");
  EXPECT_EQ(ini.GetInt("a"), 1);
  EXPECT_EQ(ini.GetInt("b"), 2);
  EXPECT_EQ(ini.Keys().size(), 2u);
}

TEST(Ini, LastDuplicateWins) {
  const auto ini = IniFile::ParseString("a = 1\na = 2\n");
  EXPECT_EQ(ini.GetInt("a"), 2);
}

TEST(Ini, TypedGettersValidate) {
  const auto ini = IniFile::ParseString(
      "i = -5\nu = 0x20\nd = 2.75\nbt = true\nbf = 0\ns = hello\n");
  EXPECT_EQ(ini.GetInt("i"), -5);
  EXPECT_EQ(ini.GetUint("u"), 32u);
  EXPECT_DOUBLE_EQ(ini.GetDouble("d"), 2.75);
  EXPECT_TRUE(ini.GetBool("bt"));
  EXPECT_FALSE(ini.GetBool("bf"));
  EXPECT_EQ(ini.GetString("s"), "hello");
  EXPECT_THROW(ini.GetInt("s"), SimError);
  EXPECT_THROW(ini.GetBool("d"), SimError);
}

TEST(Ini, MissingKeyThrowsWithName) {
  const auto ini = IniFile::ParseString("a = 1\n");
  try {
    ini.GetInt("gpu.num_sms");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("gpu.num_sms"), std::string::npos);
  }
}

TEST(Ini, DefaultsOnlyUsedWhenMissing) {
  const auto ini = IniFile::ParseString("a = 7\n");
  EXPECT_EQ(ini.GetInt("a", 99), 7);
  EXPECT_EQ(ini.GetInt("b", 99), 99);
  EXPECT_EQ(ini.GetString("c", "dflt"), "dflt");
  EXPECT_TRUE(ini.GetBool("d", true));
}

TEST(Ini, SyntaxErrorsReportLineNumbers) {
  try {
    IniFile::ParseString("a = 1\nbroken line\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(IniFile::ParseString("[unterminated\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("[]\n"), SimError);
  EXPECT_THROW(IniFile::ParseString("= novalue\n"), SimError);
}

TEST(Ini, SetAndRoundTrip) {
  IniFile ini;
  ini.Set("x.y", "42");
  EXPECT_TRUE(ini.Has("x.y"));
  const auto reparsed = IniFile::ParseString(ini.ToString());
  EXPECT_EQ(reparsed.GetInt("x.y"), 42);
}

TEST(Ini, MissingFileThrows) {
  EXPECT_THROW(IniFile::ParseFile("/nonexistent/path/config.ini"), SimError);
}

}  // namespace
}  // namespace swiftsim
