#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/rng.h"

namespace swiftsim {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  RingBuffer<int> q;
  q.Reserve(16);
  const std::size_t cap = q.capacity();
  // Pump many elements through a mostly-empty queue: head walks around the
  // ring repeatedly and capacity never changes.
  for (int i = 0; i < 1000; ++i) {
    q.push_back(i);
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingBuffer, GrowsPreservingOrderAcrossWrap) {
  RingBuffer<int> q;
  q.Reserve(16);
  // Wrap the head first, then force a regrow while wrapped.
  for (int i = 0; i < 12; ++i) q.push_back(i);
  for (int i = 0; i < 12; ++i) q.pop_front();
  for (int i = 0; i < 40; ++i) q.push_back(i);
  ASSERT_EQ(q.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(q[i], i);
}

TEST(RingBuffer, ClearKeepsCapacity) {
  RingBuffer<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingBuffer, InsertAtPositionPreservesOrder) {
  RingBuffer<int> q;
  q.push_back(1);
  q.push_back(3);
  q.insert(1, 2);   // middle
  q.insert(0, 0);   // front
  q.insert(4, 4);   // back
  ASSERT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q[i], i);
}

TEST(RingBuffer, EraseEitherSideKeepsOrder) {
  RingBuffer<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  q.erase(1);  // near front: shifts the front side
  q.erase(5);  // near back (element 6 now): shifts the back side
  ASSERT_EQ(q.size(), 6u);
  const int expect[] = {0, 2, 3, 4, 5, 7};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(q[i], expect[i]);
}

TEST(RingBuffer, HoldsNonTrivialTypes) {
  RingBuffer<std::string> q;
  q.push_back("alpha");
  q.push_back(std::string(100, 'x'));
  EXPECT_EQ(q.front(), "alpha");
  q.pop_front();
  EXPECT_EQ(q.front(), std::string(100, 'x'));
}

TEST(RingBuffer, RandomChurnMatchesDeque) {
  RingBuffer<std::uint64_t> q;
  std::deque<std::uint64_t> ref;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    switch (rng.Next() % 5) {
      case 0:
      case 1: {  // bias toward growth so the queue exercises wrap + regrow
        const std::uint64_t v = rng.Next();
        q.push_back(v);
        ref.push_back(v);
        break;
      }
      case 2:
        if (!ref.empty()) {
          q.pop_front();
          ref.pop_front();
        }
        break;
      case 3: {
        const std::uint64_t v = rng.Next();
        const std::size_t pos = ref.empty() ? 0 : rng.Next() % (ref.size() + 1);
        q.insert(pos, v);
        ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(pos), v);
        break;
      }
      default:
        if (!ref.empty()) {
          const std::size_t pos = rng.Next() % ref.size();
          q.erase(pos);
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pos));
        }
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(q.front(), ref.front());
      ASSERT_EQ(q.back(), ref.back());
    }
  }
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(q[i], ref[i]);
}

}  // namespace
}  // namespace swiftsim
