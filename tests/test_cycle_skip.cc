// Bit-identity tests for event-calendar cycle skipping (DESIGN.md §9):
// with cfg.cycle_skip the cycle-accurate driver fast-forwards over spans
// the wake calendar proves are no-op ticks. Every observable — total
// cycles, per-kernel cycles, instruction counts, and every non-driver
// metric (including per-SM stall accounting) — must match the plain
// per-cycle loop exactly, serially and under the bounded-slack parallel
// driver at slack=1.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "config/presets.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu(bool cycle_skip) {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  cfg.cycle_skip = cycle_skip;
  return cfg;
}

Application SmallApp(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.02;
  return BuildWorkload(name, s);
}

// Driver-side skip counters legitimately differ between the two runs;
// everything else (per-SM, cache, NoC, DRAM counters) must not.
std::map<std::string, std::uint64_t> NonDriverMetrics(
    const std::map<std::string, std::uint64_t>& metrics) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, value] : metrics) {
    if (key.rfind("driver.", 0) != 0) out[key] = value;
  }
  return out;
}

void ExpectIdentical(const SimResult& reference, const SimResult& skipped,
                     const std::string& what) {
  EXPECT_EQ(reference.total_cycles, skipped.total_cycles) << what;
  EXPECT_EQ(reference.instructions, skipped.instructions) << what;
  ASSERT_EQ(reference.kernels.size(), skipped.kernels.size()) << what;
  for (std::size_t k = 0; k < reference.kernels.size(); ++k) {
    EXPECT_EQ(reference.kernels[k].cycles, skipped.kernels[k].cycles)
        << what << " kernel " << reference.kernels[k].name;
    EXPECT_EQ(reference.kernels[k].instructions,
              skipped.kernels[k].instructions)
        << what << " kernel " << reference.kernels[k].name;
  }
  EXPECT_EQ(NonDriverMetrics(reference.metrics),
            NonDriverMetrics(skipped.metrics))
      << what;
}

TEST(CycleSkip, SerialDetailedBitIdenticalAcrossAllWorkloads) {
  const GpuConfig ref_cfg = SmallGpu(/*cycle_skip=*/false);
  const GpuConfig skip_cfg = SmallGpu(/*cycle_skip=*/true);
  for (const auto& spec : AllWorkloads()) {
    const Application app = SmallApp(spec.name);
    const SimResult reference =
        RunSimulation(app, ref_cfg, SimLevel::kDetailed);
    const SimResult skipped =
        RunSimulation(app, skip_cfg, SimLevel::kDetailed);
    ExpectIdentical(reference, skipped,
                    std::string(spec.name) + "/detailed");
  }
}

TEST(CycleSkip, SerialSiliconBitIdentical) {
  // kSilicon adds launch overhead and DRAM refresh; the refresh edge must
  // appear in the memory calendar or a skip would jump straight over it.
  const GpuConfig ref_cfg = SmallGpu(false);
  const GpuConfig skip_cfg = SmallGpu(true);
  for (const char* name : {"GEMM", "BFS", "HOTSPOT"}) {
    const Application app = SmallApp(name);
    const SimResult reference =
        RunSimulation(app, ref_cfg, SimLevel::kSilicon);
    const SimResult skipped =
        RunSimulation(app, skip_cfg, SimLevel::kSilicon);
    ExpectIdentical(reference, skipped, std::string(name) + "/silicon");
  }
}

TEST(CycleSkip, ParallelSlackOneBitIdenticalToPerCycleSerial) {
  // The strongest cross-check: parallel driver with skipping enabled vs
  // the serial per-cycle loop with skipping disabled, across thread
  // counts. Any late wake or rotor drift shows up as a cycle delta.
  const GpuConfig ref_cfg = SmallGpu(false);
  const GpuConfig skip_cfg = SmallGpu(true);
  for (const char* name : {"SM", "BFS"}) {
    const Application app = SmallApp(name);
    const SimResult reference =
        RunSimulation(app, ref_cfg, SimLevel::kDetailed);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      ParallelDetailedOptions opt;
      opt.num_threads = threads;
      opt.slack = 1;
      const SimResult par =
          RunParallelDetailed(app, skip_cfg, SimLevel::kDetailed, opt);
      ExpectIdentical(reference, par,
                      std::string(name) + "/detailed/t" +
                          std::to_string(threads));
    }
  }
}

TEST(CycleSkip, ActuallySkipsOnMemoryBoundWork) {
  // Guard against a trivially-disabled calendar: the irregular graph app
  // spends long spans waiting on DRAM, so a working calendar must elide
  // cycles there; with the knob off the counters must stay zero.
  const Application app = SmallApp("BFS");
  const SimResult skipped =
      RunSimulation(app, SmallGpu(true), SimLevel::kDetailed);
  EXPECT_GT(skipped.metrics.at("driver.cycles_skipped"), 0u);
  EXPECT_GT(skipped.metrics.at("driver.skip_jumps"), 0u);
  const SimResult reference =
      RunSimulation(app, SmallGpu(false), SimLevel::kDetailed);
  EXPECT_EQ(reference.metrics.at("driver.cycles_skipped"), 0u);
  EXPECT_EQ(reference.metrics.at("driver.skip_jumps"), 0u);
}

TEST(CycleSkip, SpanHistogramAccountsEveryJump) {
  const Application app = SmallApp("BFS");
  const SimResult r =
      RunSimulation(app, SmallGpu(true), SimLevel::kDetailed);
  std::uint64_t hist_total = 0;
  for (unsigned k = 0; k < 8; ++k) {
    hist_total +=
        r.metrics.at("driver.skip_span_ge_" + std::to_string(1u << k));
  }
  EXPECT_EQ(hist_total, r.metrics.at("driver.skip_jumps"));
}

TEST(CycleSkip, HybridLevelsIgnoreTheKnob) {
  // Skipping only gates the cycle-accurate-ALU driver; the hybrid levels
  // keep their own fast-forward and must be byte-for-byte unaffected.
  const Application app = SmallApp("SM");
  for (SimLevel level :
       {SimLevel::kSwiftSimBasic, SimLevel::kSwiftSimMemory}) {
    const SimResult on = RunSimulation(app, SmallGpu(true), level);
    const SimResult off = RunSimulation(app, SmallGpu(false), level);
    ExpectIdentical(on, off, ToString(level));
  }
}

TEST(CycleSkip, TightenedL2DrainBudgetStaysBitIdentical) {
  // The hoisted mem.l2_drain_attempts knob changes contention timing, so
  // the calendar must stay exact under a non-default budget too.
  GpuConfig ref_cfg = SmallGpu(false);
  GpuConfig skip_cfg = SmallGpu(true);
  ref_cfg.l2_drain_attempts = 1;
  skip_cfg.l2_drain_attempts = 1;
  const Application app = SmallApp("BFS");
  const SimResult reference =
      RunSimulation(app, ref_cfg, SimLevel::kDetailed);
  const SimResult skipped =
      RunSimulation(app, skip_cfg, SimLevel::kDetailed);
  ExpectIdentical(reference, skipped, "BFS/detailed/l2_drain_attempts=1");
}

}  // namespace
}  // namespace swiftsim
