#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

TEST(TraceStats, CountsHandBuiltKernel) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(0x10, Opcode::kIAdd, 4, {4});
  e.Alu(0x18, Opcode::kFFma, 5, {4, 4, 5}, LowLanes(16));  // divergent
  e.Mem(0x20, Opcode::kLdGlobal, 6, {4}, kFullMask,
        CoalescedAddrs(0x1000, 4));
  e.Mem(0x28, Opcode::kStShared, kNoReg, {6}, kFullMask,
        CoalescedAddrs(0, 4));
  e.Bar(0x30);
  e.Exit(0x38);

  KernelInfo info;
  info.name = "k";
  info.num_ctas = 2;
  info.warps_per_cta = 1;
  info.threads_per_cta = 32;
  KernelTrace k(info, {CtaTrace{{w}}});

  const TraceStats st = ComputeTraceStats(k);
  EXPECT_EQ(st.dynamic_instrs, 12u);  // 6 instrs x 2 CTAs
  EXPECT_EQ(st.warps, 2u);
  EXPECT_EQ(st.mem_instrs, 4u);
  EXPECT_EQ(st.global_mem_instrs, 2u);
  EXPECT_EQ(st.shared_mem_instrs, 2u);
  EXPECT_EQ(st.barriers, 2u);
  EXPECT_EQ(st.divergent_instrs, 2u);
  EXPECT_EQ(st.fully_active_instrs, 10u);
  // Coalesced 32 x 4B starting at 0x1000 touches exactly one 128B line.
  EXPECT_EQ(st.distinct_lines_touched, 1u);
  EXPECT_EQ(st.distinct_pcs, 6u);
  EXPECT_NEAR(st.mem_fraction(), 4.0 / 12.0, 1e-9);
}

TEST(TraceStats, AvgActiveLanes) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(0x10, Opcode::kIAdd, 4, {}, LowLanes(8));
  e.Exit(0x18);
  KernelInfo info;
  info.name = "k";
  info.num_ctas = 1;
  info.warps_per_cta = 1;
  info.threads_per_cta = 32;
  KernelTrace k(info, {CtaTrace{{w}}});
  const TraceStats st = ComputeTraceStats(k);
  EXPECT_DOUBLE_EQ(st.avg_active_lanes(), (8.0 + 32.0) / 2.0);
}

TEST(TraceStats, WorkloadSmokeToString) {
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("SM", s);
  const TraceStats st = ComputeTraceStats(*app.kernels[0]);
  EXPECT_GT(st.dynamic_instrs, 0u);
  EXPECT_GT(st.mem_instrs, 0u);
  EXPECT_FALSE(st.ToString().empty());
}

}  // namespace
}  // namespace swiftsim
