// Chaos suite for the resilient runtime (DESIGN.md §11): deterministic
// fault plans driven through the cycle-accurate drivers, serially and
// under the bounded-slack parallel driver at slack=1. Under every
// survivable plan the simulation must complete with its conservation
// invariants intact (same instructions as the clean run, identical
// results across serial/parallel and across repeats); the deliberate
// livelock fixtures must trip the watchdog or wedge detector with a
// typed SimHangError and a diagnostic dump that names the stalled
// SM/warp — never hang, never crash. With injection and the watchdog
// disabled (or armed but never tripping) every SimLevel stays
// bit-identical to the seed behaviour.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "config/ini.h"
#include "config/presets.h"
#include "swiftsim/fault_inject.h"
#include "swiftsim/parallel.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  // Backstops so a resilience bug fails the test instead of hanging CI;
  // both are far above anything a survivable plan can trigger.
  cfg.watchdog.stall_cycles = 500000;
  cfg.watchdog.wall_seconds = 120;
  return cfg;
}

Application SmallApp(const std::string& name, double scale = 0.02) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A kernel no SM can host: the launch feasibility check throws SimError
/// at BeginKernel on every level, including the analytical fallback.
Application Poisoned(Application app) {
  auto& first = app.kernels.front();
  KernelInfo info = first->info();
  info.smem_bytes_per_cta = 1u << 30;
  std::vector<CtaTrace> variants;
  variants.reserve(first->num_variants());
  for (std::size_t v = 0; v < first->num_variants(); ++v) {
    variants.push_back(first->variant(v));
  }
  first = std::make_shared<KernelTrace>(info, std::move(variants));
  app.name += "_poisoned";
  return app;
}

void ExpectSameRun(const SimResult& a, const SimResult& b,
                   const std::string& what) {
  EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  ASSERT_EQ(a.kernels.size(), b.kernels.size()) << what;
  for (std::size_t k = 0; k < a.kernels.size(); ++k) {
    EXPECT_EQ(a.kernels[k].cycles, b.kernels[k].cycles)
        << what << " kernel " << a.kernels[k].name;
    EXPECT_EQ(a.kernels[k].instructions, b.kernels[k].instructions)
        << what << " kernel " << a.kernels[k].name;
  }
}

struct PlanCase {
  const char* label;
  FaultPlan plan;
  bool expect_delays = false;
  bool expect_drops = false;
};

std::vector<PlanCase> SurvivablePlans() {
  std::vector<PlanCase> cases;
  {
    PlanCase c;
    c.label = "none";
    c.plan.name = "none";
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "delay_light";
    c.plan.name = "delay_light";
    c.plan.resp_delay_p = 0.2;
    c.plan.resp_delay_cycles = 7;
    c.expect_delays = true;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "delay_heavy";
    c.plan.name = "delay_heavy";
    c.plan.resp_delay_p = 1.0;
    c.plan.resp_delay_cycles = 50;
    c.expect_delays = true;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "drop_retry";
    c.plan.name = "drop_retry";
    c.plan.resp_drop_p = 0.1;
    c.plan.resp_retry_cycles = 30;
    c.plan.resp_max_drops = 3;
    c.expect_drops = true;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "drop_heavy";
    c.plan.name = "drop_heavy";
    c.plan.resp_drop_p = 0.5;
    c.plan.resp_retry_cycles = 100;
    c.plan.resp_max_drops = 5;
    c.expect_drops = true;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "issue_freeze";
    c.plan.name = "issue_freeze";
    c.plan.issue_stall_p = 0.3;
    c.plan.issue_stall_cycles = 20;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "storm";
    c.plan.name = "storm";
    c.plan.storm_p = 0.5;
    c.plan.storm_cycles = 16;
    cases.push_back(c);
  }
  {
    PlanCase c;
    c.label = "combo";
    c.plan.name = "combo";
    c.plan.resp_delay_p = 0.3;
    c.plan.resp_delay_cycles = 9;
    c.plan.resp_drop_p = 0.2;
    c.plan.resp_retry_cycles = 40;
    c.plan.resp_max_drops = 2;
    c.plan.issue_stall_p = 0.1;
    c.plan.issue_stall_cycles = 12;
    c.plan.storm_p = 0.2;
    c.plan.storm_cycles = 8;
    c.expect_delays = true;
    c.expect_drops = true;
    cases.push_back(c);
  }
  return cases;
}

class ChaosSuite : public ::testing::TestWithParam<PlanCase> {};

TEST_P(ChaosSuite, CompletesWithInvariantsSeriallyAndParallel) {
  const PlanCase& c = GetParam();
  const GpuConfig cfg = SmallGpu();
  for (const char* workload : {"BFS", "SM"}) {
    const Application app = SmallApp(workload);

    GpuModel clean(cfg, SelectionFor(SimLevel::kDetailed));
    const SimResult baseline = clean.RunApplication(app);

    FaultInjector serial_inj(c.plan, cfg.num_sms);
    GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
    model.ArmFaults(&serial_inj);
    const SimResult faulted = model.RunApplication(app);

    // Conservation: every traced instruction still retires; faults move
    // work in time, they never lose it.
    EXPECT_EQ(faulted.instructions, baseline.instructions)
        << c.label << "/" << workload;
    EXPECT_GT(faulted.total_cycles, 0u) << c.label << "/" << workload;
    if (c.expect_delays) {
      EXPECT_GT(serial_inj.delayed(), 0u) << c.label;
    }
    if (c.expect_drops) {
      // Every custody chain ends in a redelivery (drops are bounded) and
      // the completed run holds nothing back. `redelivered` counts all
      // releases — delayed as well as dropped responses.
      EXPECT_GT(serial_inj.dropped(), 0u) << c.label;
      EXPECT_GE(serial_inj.delayed() + serial_inj.dropped(),
                serial_inj.redelivered())
          << c.label;
      EXPECT_FALSE(serial_inj.AnyHeld()) << c.label;
    }
    if (!c.plan.AnyRuntime()) {
      // Armed-but-empty plan: the hook seam itself must be invisible.
      ExpectSameRun(baseline, faulted, std::string(c.label) + " neutrality");
    }

    // Determinism: the same plan replays the same faults.
    FaultInjector repeat_inj(c.plan, cfg.num_sms);
    GpuModel repeat(cfg, SelectionFor(SimLevel::kDetailed));
    repeat.ArmFaults(&repeat_inj);
    ExpectSameRun(faulted, repeat.RunApplication(app),
                  std::string(c.label) + "/" + workload + " repeat");

    // Stateless decisions: the slack=1 parallel driver sees the identical
    // fault schedule, so it stays bit-identical to the serial run even
    // under injection.
    FaultInjector par_inj(c.plan, cfg.num_sms);
    ParallelDetailedOptions popt;
    popt.num_threads = 2;
    popt.slack = 1;
    popt.fault = &par_inj;
    const SimResult par =
        RunParallelDetailed(app, cfg, SimLevel::kDetailed, popt);
    ExpectSameRun(faulted, par,
                  std::string(c.label) + "/" + workload + " parallel");
  }
}

INSTANTIATE_TEST_SUITE_P(All, ChaosSuite,
                         ::testing::ValuesIn(SurvivablePlans()),
                         [](const ::testing::TestParamInfo<PlanCase>& info) {
                           return std::string(info.param.label);
                         });

TEST(Chaos, FreezeForeverTripsCycleWatchdog) {
  // issue_stall_p = 1 freezes every SM in every window: the clock spins
  // with zero forward progress until the cycle watchdog trips.
  FaultPlan plan;
  plan.name = "freeze_forever";
  plan.issue_stall_p = 1.0;
  plan.issue_stall_cycles = 64;
  GpuConfig cfg = SmallGpu();
  cfg.watchdog.stall_cycles = 5000;
  cfg.watchdog.dump_dir = testing::TempDir() + "chaos_dumps";
  const Application app = SmallApp("SM");
  FaultInjector inj(plan, cfg.num_sms);
  GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
  model.ArmFaults(&inj);
  try {
    model.RunApplication(app);
    FAIL() << "expected SimHangError";
  } catch (const SimHangError& e) {
    EXPECT_EQ(e.kind(), SimHangError::Kind::kNoProgress);
    const std::string what = e.what();
    EXPECT_NE(what.find("no forward progress"), std::string::npos) << what;
    EXPECT_NE(what.find(app.kernels.front()->info().name),
              std::string::npos)
        << what;
    // Trips within a small multiple of the configured window.
    EXPECT_LT(model.now(), Cycle{3} * cfg.watchdog.stall_cycles);
    ASSERT_FALSE(e.dump_path().empty());
    const std::string dump = ReadAll(e.dump_path());
    EXPECT_NE(dump.find("\"stalled\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"sm\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"warp\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"resource\""), std::string::npos) << dump;
  }
}

TEST(Chaos, DropForeverWedgesInsteadOfHanging) {
  // Every response swallowed with no redelivery: once the queues drain
  // there is no future event, and the driver must detect the wedge
  // rather than skip to the end of time or spin forever.
  FaultPlan plan;
  plan.name = "drop_forever";
  plan.resp_drop_p = 1.0;
  plan.resp_max_drops = 0;  // never redeliver
  GpuConfig cfg = SmallGpu();
  cfg.cycle_skip = true;
  cfg.watchdog.dump_dir = testing::TempDir() + "chaos_dumps";
  const Application app = SmallApp("BFS");
  FaultInjector inj(plan, cfg.num_sms);
  GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
  model.ArmFaults(&inj);
  try {
    model.RunApplication(app);
    FAIL() << "expected SimHangError";
  } catch (const SimHangError& e) {
    EXPECT_NE(e.kind(), SimHangError::Kind::kWallClock) << e.what();
    ASSERT_FALSE(e.dump_path().empty());
    const std::string dump = ReadAll(e.dump_path());
    EXPECT_NE(dump.find("\"stalled\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"faults_held\""), std::string::npos) << dump;
  }
  EXPECT_GT(inj.dropped(), 0u);
}

TEST(Chaos, LivelockUnderParallelDriverAlsoTrips) {
  FaultPlan plan;
  plan.name = "freeze_forever";
  plan.issue_stall_p = 1.0;
  plan.issue_stall_cycles = 64;
  GpuConfig cfg = SmallGpu();
  cfg.watchdog.stall_cycles = 5000;
  const Application app = SmallApp("SM");
  FaultInjector inj(plan, cfg.num_sms);
  ParallelDetailedOptions popt;
  popt.num_threads = 2;
  popt.slack = 1;
  popt.fault = &inj;
  EXPECT_THROW(RunParallelDetailed(app, cfg, SimLevel::kDetailed, popt),
               SimHangError);
}

TEST(Chaos, DegradeOnHangFallsBackAnalytically) {
  FaultPlan plan;
  plan.name = "drop_forever";
  plan.resp_drop_p = 1.0;
  plan.resp_max_drops = 0;
  GpuConfig cfg = SmallGpu();
  cfg.cycle_skip = true;
  cfg.degrade.on_hang = true;
  cfg.watchdog.dump_dir = testing::TempDir() + "chaos_dumps";
  const Application app = SmallApp("BFS");
  Simulator sim(app, cfg, SimLevel::kDetailed);
  sim.ArmFaultPlan(&plan);
  const SimResult r = sim.Run();
  ASSERT_EQ(r.kernels.size(), app.kernels.size());
  ASSERT_GE(r.degrades.size(), 1u);
  for (const auto& ev : r.degrades) {
    EXPECT_FALSE(ev.kernel.empty());
    EXPECT_FALSE(ev.reason.empty());
  }
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.total_cycles, 0u);
  const auto it = r.metrics.find("driver.degrade_events");
  ASSERT_NE(it, r.metrics.end());
  EXPECT_EQ(it->second, r.degrades.size());
}

TEST(Chaos, RetryExhaustionRethrowsWhenDegradeOff) {
  FaultPlan plan;
  plan.name = "drop_forever";
  plan.resp_drop_p = 1.0;
  plan.resp_max_drops = 0;
  GpuConfig cfg = SmallGpu();
  cfg.cycle_skip = true;
  cfg.degrade.on_hang = false;
  cfg.degrade.max_retries = 1;  // deterministic fault recurs on retry
  const Application app = SmallApp("SM");
  Simulator sim(app, cfg, SimLevel::kDetailed);
  sim.ArmFaultPlan(&plan);
  EXPECT_THROW(sim.Run(), SimHangError);
}

TEST(Chaos, BatchIsolationCompletesAroundPoisonedApp) {
  const GpuConfig cfg = SmallGpu();
  const std::vector<Application> apps = {SmallApp("BFS"),
                                         Poisoned(SmallApp("SM")),
                                         SmallApp("PAGERANK")};
  BatchOptions options;
  options.isolate_failures = true;
  options.max_retries = 1;
  const ParallelBatchResult batch =
      RunAppsParallel(apps, cfg, SimLevel::kSwiftSimMemory, 2, options);
  ASSERT_EQ(batch.results.size(), 3u);
  ASSERT_EQ(batch.statuses.size(), 3u);
  EXPECT_EQ(batch.statuses[0].status, AppStatus::kOk);
  EXPECT_EQ(batch.statuses[2].status, AppStatus::kOk);
  EXPECT_EQ(batch.statuses[1].status, AppStatus::kFailed);
  EXPECT_FALSE(batch.statuses[1].error.empty());
  EXPECT_EQ(batch.statuses[1].attempts, 2u);  // 1 try + 1 retry
  // The healthy apps' results match their standalone runs.
  const SimResult solo = RunSimulation(apps[0], cfg, SimLevel::kSwiftSimMemory);
  EXPECT_EQ(batch.results[0].total_cycles, solo.total_cycles);
  EXPECT_GT(batch.results[2].total_cycles, 0u);
  EXPECT_STREQ(ToString(AppStatus::kFailed), "failed");
}

TEST(Chaos, LegacyBatchOverloadStillFailsFast) {
  const GpuConfig cfg = SmallGpu();
  const std::vector<Application> apps = {SmallApp("BFS"),
                                         Poisoned(SmallApp("SM"))};
  EXPECT_THROW(RunAppsParallel(apps, cfg, SimLevel::kSwiftSimMemory, 2),
               SimError);
}

TEST(Chaos, TraceTruncationStaysValidAndCompletes) {
  FaultPlan plan;
  plan.name = "truncate";
  plan.trace_truncate_p = 1.0;
  const Application app = SmallApp("SM");
  const Application faulted = InjectTraceFaults(app, plan);
  ASSERT_EQ(faulted.kernels.size(), app.kernels.size());
  EXPECT_LT(faulted.TotalInstrs(), app.TotalInstrs());
  EXPECT_GT(faulted.TotalInstrs(), 0u);
  const GpuConfig cfg = SmallGpu();
  const SimResult r = RunSimulation(faulted, cfg, SimLevel::kDetailed);
  EXPECT_EQ(r.instructions, faulted.TotalInstrs());
}

TEST(Chaos, TraceCorruptionRejectedAtIngestion) {
  FaultPlan plan;
  plan.name = "corrupt";
  plan.trace_corrupt_p = 1.0;
  const Application app = SmallApp("SM");
  try {
    InjectTraceFaults(app, plan);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rejected at ingestion"), std::string::npos) << what;
    EXPECT_NE(what.find(app.kernels.front()->info().name),
              std::string::npos)
        << what;
  }
}

TEST(Chaos, ArmedObserversStayBitIdentical) {
  // Watchdog enabled (but never tripping) and degrade enabled (but never
  // needed) must not perturb a healthy run at any level.
  const Application app = SmallApp("BFS");
  for (SimLevel level : {SimLevel::kDetailed, SimLevel::kSwiftSimBasic,
                         SimLevel::kSwiftSimMemory}) {
    GpuConfig off = Rtx2080TiConfig();
    off.num_sms = 4;
    off.num_mem_partitions = 2;
    GpuConfig on = off;
    on.watchdog.stall_cycles = 100000000;
    on.watchdog.wall_seconds = 3600;
    on.degrade.on_hang = true;
    ExpectSameRun(RunSimulation(app, off, level),
                  RunSimulation(app, on, level), ToString(level));
  }
}

TEST(Chaos, FaultPlanIniRoundTrip) {
  const IniFile ini = IniFile::ParseString(
      "[fault]\n"
      "name = stormy\n"
      "seed = 7\n"
      "resp_drop_p = 0.5\n"
      "resp_retry_cycles = 10\n"
      "resp_max_drops = 2\n"
      "storm_p = 0.25\n"
      "storm_cycles = 16\n");
  const FaultPlan plan = FaultPlan::FromIni(ini);
  EXPECT_EQ(plan.name, "stormy");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.resp_drop_p, 0.5);
  EXPECT_EQ(plan.resp_retry_cycles, 10u);
  EXPECT_EQ(plan.resp_max_drops, 2u);
  EXPECT_DOUBLE_EQ(plan.storm_p, 0.25);
  EXPECT_EQ(plan.storm_cycles, 16u);
  EXPECT_TRUE(plan.AnyRuntime());
  EXPECT_FALSE(plan.AnyTrace());
}

TEST(Chaos, FaultPlanValidateRejectsBadPlans) {
  FaultPlan out_of_range;
  out_of_range.resp_delay_p = 1.5;
  out_of_range.resp_delay_cycles = 4;
  EXPECT_THROW(out_of_range.Validate(), SimError);

  FaultPlan missing_span;
  missing_span.resp_delay_p = 0.5;  // no resp_delay_cycles
  EXPECT_THROW(missing_span.Validate(), SimError);

  EXPECT_THROW(FaultPlan::FromFile("/nonexistent/fault_plan.ini"), SimError);
}

}  // namespace
}  // namespace swiftsim
