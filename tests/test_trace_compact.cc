// Columnar trace-core gates (DESIGN.md §14).
//
// The compact storage rewrite is a pure representation change: the dense
// 16-byte record + side address pool must hold exactly the information the
// AoS form held, and every consumer — fingerprinting, the SM issue path at
// all SimLevels, cycle skipping, the parallel detailed driver, memo replay
// — must produce bit-identical results. The golden fingerprints, instr
// counts and cycle counts below were captured from the pre-columnar AoS
// seed at scale 0.05 with the default config; any drift is a correctness
// bug in the encoding, not a tolerance to widen.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "config/gpu_config.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "trace/fingerprint.h"
#include "trace/trace_io.h"
#include "workloads/gen_util.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

WorkloadScale TestScale() {
  WorkloadScale s;
  s.scale = 0.05;
  return s;  // default seed 0x5eed5eed
}

GpuConfig TestConfig() {
  GpuConfig cfg;
  cfg.memo.enabled = false;
  return cfg;
}

/// Golden values captured from the AoS seed build (scale 0.05, default
/// seed and config, memo off): application fingerprint, dynamic instrs,
/// and cycles at the three SimLevels.
struct Golden {
  const char* app;
  const char* fingerprint;
  std::uint64_t instrs;
  Cycle detailed;
  Cycle basic;
  Cycle memory;
};

const std::vector<Golden>& Goldens() {
  static const std::vector<Golden> kGoldens = {
      {"BFS", "068d560b5562a0a768aca37248101a4a", 16416, 36570, 36376,
       48214},
      {"GEMM", "2d46bef1516b3ba77ce854ff374eee75", 17376, 6859, 6901, 8810},
      {"SSSP", "0e77ce494a9cb6fe4aaf67997d17f26c", 8784, 41820, 41819,
       35430},
      {"NW", "a9bd1471f2cbedd79f3cb4699003c1a2", 15552, 11664, 11649,
       14728},
  };
  return kGoldens;
}

TEST(TraceCompact, RecordStaysDense16Bytes) {
  static_assert(sizeof(CompactInstr) == 16);
  EXPECT_EQ(sizeof(CompactInstr), 16u);
  // The AoS interchange form carries the inline lane-address vector; the
  // compact record must undercut it by at least 3x on its own.
  EXPECT_GE(sizeof(TraceInstr), 3 * sizeof(CompactInstr));
}

TEST(TraceCompact, RoundTripEveryWorkload) {
  // AoS -> columnar -> AoS through every registered generator: Decode must
  // reconstruct each instruction exactly, and re-encoding the decoded
  // stream must reproduce the columns byte for byte.
  for (const WorkloadSpec& spec : AllWorkloads()) {
    const Application app = BuildWorkload(spec.name, TestScale());
    for (const auto& kernel : app.kernels) {
      for (std::size_t v = 0; v < kernel->num_variants(); ++v) {
        for (const WarpTrace& warp : kernel->variant(v).warps) {
          WarpTrace reencoded;
          for (std::size_t i = 0; i < warp.size(); ++i) {
            reencoded.push_back(warp.Decode(i));
          }
          ASSERT_EQ(warp, reencoded)
              << spec.name << " kernel " << kernel->info().name
              << " variant " << v;
        }
      }
    }
  }
}

TEST(TraceCompact, GoldenFingerprintsAndInstrCounts) {
  for (const Golden& g : Goldens()) {
    const Application app = BuildWorkload(g.app, TestScale());
    EXPECT_EQ(FingerprintApplication(app).ToHex(), g.fingerprint) << g.app;
    EXPECT_EQ(app.TotalInstrs(), g.instrs) << g.app;
  }
}

TEST(TraceCompact, GoldenCyclesAtEveryLevelSerial) {
  const GpuConfig cfg = TestConfig();
  for (const Golden& g : Goldens()) {
    const Application app = BuildWorkload(g.app, TestScale());
    EXPECT_EQ(RunSimulation(app, cfg, SimLevel::kDetailed).total_cycles,
              g.detailed)
        << g.app;
    EXPECT_EQ(RunSimulation(app, cfg, SimLevel::kSwiftSimBasic).total_cycles,
              g.basic)
        << g.app;
    EXPECT_EQ(RunSimulation(app, cfg, SimLevel::kSwiftSimMemory).total_cycles,
              g.memory)
        << g.app;
  }
}

TEST(TraceCompact, CycleSkipOnOffIdentical) {
  GpuConfig on = TestConfig();
  on.cycle_skip = true;
  GpuConfig off = TestConfig();
  off.cycle_skip = false;
  for (const Golden& g : Goldens()) {
    const Application app = BuildWorkload(g.app, TestScale());
    EXPECT_EQ(RunSimulation(app, on, SimLevel::kDetailed).total_cycles,
              RunSimulation(app, off, SimLevel::kDetailed).total_cycles)
        << g.app;
  }
}

TEST(TraceCompact, ParallelSlack1MatchesGolden) {
  const GpuConfig cfg = TestConfig();
  ParallelDetailedOptions opt;
  opt.num_threads = 2;
  opt.slack = 1;
  for (const Golden& g : Goldens()) {
    const Application app = BuildWorkload(g.app, TestScale());
    EXPECT_EQ(
        RunParallelDetailed(app, cfg, SimLevel::kDetailed, opt).total_cycles,
        g.detailed)
        << g.app;
  }
}

TEST(TraceCompact, MemoReplayIdentical) {
  // Memoized replay fingerprints the columnar trace; a second run of the
  // same application must replay to exactly the fresh run's cycles.
  GpuConfig cfg = TestConfig();
  cfg.memo.enabled = true;
  const Application app = BuildWorkload("SSSP", TestScale());
  Simulator sim(app, cfg, SimLevel::kSwiftSimMemory);
  const Cycle fresh = sim.Run().total_cycles;
  const SimResult replayed = sim.Run();
  EXPECT_EQ(replayed.total_cycles, fresh);
  const auto hits = replayed.metrics.find("memo.hits");
  ASSERT_NE(hits, replayed.metrics.end());
  EXPECT_GT(hits->second, 0u);
}

TEST(TraceCompact, ParallelBuildMatchesSerialBuild) {
  // Per-variant Rngs are independent, so ThreadPool generation must be a
  // pure reordering: fingerprints (which walk in variant order) agree.
  for (const Golden& g : Goldens()) {
    workloads::SetParallelTraceBuild(false);
    const Fingerprint serial =
        FingerprintApplication(BuildWorkload(g.app, TestScale()));
    workloads::SetParallelTraceBuild(true);
    const Fingerprint parallel =
        FingerprintApplication(BuildWorkload(g.app, TestScale()));
    EXPECT_EQ(serial.ToHex(), parallel.ToHex()) << g.app;
  }
}

TEST(TraceCompact, DiskCacheRoundTripBitIdentical) {
  const std::string dir = testing::TempDir() + "trace_compact_cache";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  TraceBuildOptions opts;
  opts.cache_dir = dir;
  for (const Golden& g : Goldens()) {
    bool hit = true;
    const Application cold = BuildWorkloadCached(g.app, TestScale(), opts,
                                                 &hit);
    EXPECT_FALSE(hit) << g.app;
    const Application warm = BuildWorkloadCached(g.app, TestScale(), opts,
                                                 &hit);
    EXPECT_TRUE(hit) << g.app;
    EXPECT_EQ(FingerprintApplication(cold).ToHex(), g.fingerprint) << g.app;
    EXPECT_EQ(FingerprintApplication(warm).ToHex(), g.fingerprint) << g.app;
    ASSERT_EQ(warm.kernels.size(), cold.kernels.size());
    for (std::size_t k = 0; k < warm.kernels.size(); ++k) {
      ASSERT_EQ(warm.kernels[k]->num_variants(),
                cold.kernels[k]->num_variants());
      for (std::size_t v = 0; v < warm.kernels[k]->num_variants(); ++v) {
        ASSERT_EQ(warm.kernels[k]->variant(v).warps,
                  cold.kernels[k]->variant(v).warps)
            << g.app;
      }
    }
  }
  std::filesystem::remove_all(dir, ec);
}

TEST(TraceCompact, CompressionBeatsAoSBy3x) {
  for (const Golden& g : Goldens()) {
    const Application app = BuildWorkload(g.app, TestScale());
    std::uint64_t bytes = 0;
    for (const auto& kernel : app.kernels) bytes += kernel->TraceBytes();
    const double bpi =
        static_cast<double>(bytes) / static_cast<double>(app.TotalInstrs());
    EXPECT_LE(bpi * 3.0, static_cast<double>(sizeof(TraceInstr)))
        << g.app << " bytes/instr " << bpi;
  }
}

}  // namespace
}  // namespace swiftsim
