// Tests for the reuse-distance-based Eq. 1 hit-rate source, including the
// paper's §II-B limitation arguments.
#include "analytical/rd_profile.h"

#include <gtest/gtest.h>

#include "analytical/cache_prepass.h"
#include "config/presets.h"
#include "sim/gpu_model.h"
#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

Application StreamVsReuseApp(unsigned repeats) {
  WarpTrace w;
  WarpEmitter e(&w);
  for (unsigned i = 0; i < repeats; ++i) {
    e.Mem(0x100, Opcode::kLdGlobal, 8, {2}, kFullMask,
          CoalescedAddrs(0x10000000 + static_cast<Addr>(i) * 65536, 4));
    e.Mem(0x108, Opcode::kLdGlobal, 9, {2}, kFullMask,
          CoalescedAddrs(0x20000000, 4));
  }
  e.Exit(0x110);
  KernelInfo info;
  info.name = "svr";
  info.id = 0;
  info.num_ctas = 1;
  info.warps_per_cta = 1;
  info.threads_per_cta = 32;
  Application app;
  app.name = "svr";
  app.kernels.push_back(std::make_shared<KernelTrace>(
      info, std::vector<CtaTrace>{CtaTrace{{w}}}));
  return app;
}

TEST(RdProfile, SeparatesStreamingFromReuse) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const MemProfile p = BuildMemProfileReuseDistance(StreamVsReuseApp(64),
                                                    cfg);
  const PcHitRates& stream = p.Lookup(0, 0x100);
  const PcHitRates& reuse = p.Lookup(0, 0x108);
  EXPECT_LT(stream.r_l1(), 0.05);
  // Reuse distance 1 (one streaming line between consecutive touches):
  // hits at every non-cold access under LRU stack theory.
  EXPECT_GT(reuse.r_l1(), 0.9);
}

TEST(RdProfile, RatesSumToOneOnRealWorkloads) {
  const GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("PAGERANK", s);
  const MemProfile p = BuildMemProfileReuseDistance(app, cfg);
  for (const auto& kernel : app.kernels) {
    for (const CompactInstr& ins : kernel->cta(0).warps[0]) {
      if (ins.op != Opcode::kLdGlobal) continue;
      const PcHitRates& r = p.Lookup(kernel->info().id, ins.pc);
      EXPECT_NEAR(r.r_l1() + r.r_l2() + r.r_dram(), 1.0, 1e-9);
    }
  }
}

TEST(RdProfile, BroadlyAgreesWithFunctionalPrepassOnStreaming) {
  // On a pure streaming app both sources must call nearly everything a
  // DRAM access (the functional pre-pass adds MSHR-merge corrections, so
  // only a loose agreement is expected in general).
  const GpuConfig cfg = Rtx2080TiConfig();
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("SM", s);
  const MemProfile rd = BuildMemProfileReuseDistance(app, cfg);
  const MemProfile fc = BuildMemProfile(app, cfg);
  const CompactInstr* load = nullptr;
  for (const CompactInstr& ins : app.kernels[0]->cta(0).warps[0]) {
    if (ins.op == Opcode::kLdGlobal) {
      load = &ins;
      break;
    }
  }
  ASSERT_NE(load, nullptr);
  const PcHitRates& a = rd.Lookup(0, load->pc);
  const PcHitRates& b = fc.Lookup(0, load->pc);
  EXPECT_LT(a.r_l1(), 0.2);
  EXPECT_LT(b.r_l1(), 0.2);
}

TEST(RdProfile, BlindToReplacementPolicy) {
  // The paper's §II-B DSE argument: reuse-distance cache models assume
  // LRU, so switching the policy to Random changes NOTHING in the
  // profile — while the cycle-accurate cache module responds.
  WorkloadScale s;
  s.scale = 0.03;
  const Application app = BuildWorkload("LU", s);

  GpuConfig lru = Rtx2080TiConfig();
  GpuConfig rnd = Rtx2080TiConfig();
  rnd.l1.replacement = ReplacementPolicy::kRandom;
  rnd.l2.replacement = ReplacementPolicy::kRandom;

  // Reuse-distance profiles: bit-identical.
  const MemProfile p_lru = BuildMemProfileReuseDistance(app, lru);
  const MemProfile p_rnd = BuildMemProfileReuseDistance(app, rnd);
  for (const CompactInstr& ins : app.kernels[0]->cta(0).warps[0]) {
    if (ins.op != Opcode::kLdGlobal) continue;
    EXPECT_EQ(p_lru.Lookup(0, ins.pc).l1_hits,
              p_rnd.Lookup(0, ins.pc).l1_hits);
  }

  // Cycle-accurate module: the sweep is observable (Swift-Sim-Basic keeps
  // the memory path cycle-accurate). Use a small chip to keep this fast.
  lru.num_sms = 4;
  lru.num_mem_partitions = 2;
  rnd.num_sms = 4;
  rnd.num_mem_partitions = 2;
  GpuModel m_lru(lru, SelectionFor(SimLevel::kSwiftSimBasic));
  GpuModel m_rnd(rnd, SelectionFor(SimLevel::kSwiftSimBasic));
  EXPECT_NE(m_lru.RunApplication(app).total_cycles,
            m_rnd.RunApplication(app).total_cycles);
}

TEST(RdProfile, UsableByTheAnalyticalMemModel) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const Application app = StreamVsReuseApp(32);
  const MemProfile p = BuildMemProfileReuseDistance(app, cfg);
  const AnalyticalMemModel m(cfg, &p);
  // The reused line is L1-resident: near-L1 latency; the stream is DRAM.
  EXPECT_LT(m.LoadLatency(0, 0x108), m.LoadLatency(0, 0x100));
}

}  // namespace
}  // namespace swiftsim
