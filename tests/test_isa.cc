#include "trace/isa.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Isa, NamesRoundTrip) {
  for (std::uint8_t i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    EXPECT_EQ(OpcodeFromName(Name(op)), op) << Name(op);
  }
}

TEST(Isa, UnknownNameThrows) {
  EXPECT_THROW(OpcodeFromName("NOTANOP"), SimError);
  EXPECT_THROW(OpcodeFromName(""), SimError);
  EXPECT_THROW(OpcodeFromName("ffma"), SimError);  // case-sensitive
}

TEST(Isa, UnitClassAssignments) {
  EXPECT_EQ(ClassOf(Opcode::kIAdd), UnitClass::kInt);
  EXPECT_EQ(ClassOf(Opcode::kBra), UnitClass::kInt);
  EXPECT_EQ(ClassOf(Opcode::kFFma), UnitClass::kSp);
  EXPECT_EQ(ClassOf(Opcode::kDFma), UnitClass::kDp);
  EXPECT_EQ(ClassOf(Opcode::kRsqrt), UnitClass::kSfu);
  EXPECT_EQ(ClassOf(Opcode::kHmma), UnitClass::kTensor);
  EXPECT_EQ(ClassOf(Opcode::kLdGlobal), UnitClass::kLdSt);
  EXPECT_EQ(ClassOf(Opcode::kBarSync), UnitClass::kControl);
  EXPECT_EQ(ClassOf(Opcode::kExit), UnitClass::kControl);
}

TEST(Isa, MemoryPredicates) {
  EXPECT_TRUE(IsMemory(Opcode::kLdGlobal));
  EXPECT_TRUE(IsMemory(Opcode::kStShared));
  EXPECT_TRUE(IsMemory(Opcode::kLdConst));
  EXPECT_FALSE(IsMemory(Opcode::kFFma));

  EXPECT_TRUE(IsLoad(Opcode::kLdGlobal));
  EXPECT_TRUE(IsLoad(Opcode::kLdConst));
  EXPECT_FALSE(IsLoad(Opcode::kStGlobal));

  EXPECT_TRUE(IsStore(Opcode::kStGlobal));
  EXPECT_TRUE(IsStore(Opcode::kStShared));
  EXPECT_FALSE(IsStore(Opcode::kLdShared));

  EXPECT_TRUE(IsGlobalMem(Opcode::kLdGlobal));
  EXPECT_TRUE(IsGlobalMem(Opcode::kStGlobal));
  EXPECT_FALSE(IsGlobalMem(Opcode::kLdShared));
  EXPECT_FALSE(IsGlobalMem(Opcode::kLdConst));

  EXPECT_TRUE(IsSharedMem(Opcode::kLdShared));
  EXPECT_TRUE(IsSharedMem(Opcode::kStShared));
  EXPECT_FALSE(IsSharedMem(Opcode::kLdGlobal));
}

TEST(Isa, ControlPredicates) {
  EXPECT_TRUE(IsBarrier(Opcode::kBarSync));
  EXPECT_FALSE(IsBarrier(Opcode::kExit));
  EXPECT_TRUE(IsExit(Opcode::kExit));
  EXPECT_FALSE(IsExit(Opcode::kBarSync));
}

TEST(Isa, EveryOpcodeHasDistinctName) {
  for (std::uint8_t i = 0; i < kNumOpcodes; ++i) {
    for (std::uint8_t j = i + 1; j < kNumOpcodes; ++j) {
      EXPECT_NE(Name(static_cast<Opcode>(i)), Name(static_cast<Opcode>(j)));
    }
  }
}

}  // namespace
}  // namespace swiftsim
