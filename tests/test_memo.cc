// Cross-launch memoization gates (DESIGN.md §10): fingerprint stability
// and sensitivity, bit-identical replay at the analytical-memory level,
// bounded-error convergence replay at kDetailed (serial and under the
// bounded-slack parallel driver), the --no-memo escape hatch, and the
// on-disk cache round trip.
//
// Per-SM counters are compared in aggregate: fresh repeats rotate CTA
// placement across homogeneous SMs while replay reports the recorded
// launch's deltas, so raw per-SM maps are SM-permutation-equivalent
// rather than equal (documented in memo_cache.h).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "common/status.h"
#include "config/presets.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "trace/fingerprint.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application SmallApp(const std::string& name, double scale = 0.02) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s);
}

void ClearGlobalCaches() {
  MemoCache::Global().Clear();
  ProfileCache::Global().Clear();
}

/// Collapses "sm<id>[.l1].counter" keys to "sm[.l1].counter" sums and
/// drops the "memo.*" driver telemetry, yielding the SM-permutation-
/// invariant view two exact runs must agree on.
std::map<std::string, std::uint64_t> AggregatedMetrics(
    const std::map<std::string, std::uint64_t>& metrics) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, value] : metrics) {
    if (key.rfind("memo.", 0) == 0) continue;
    std::string name = key;
    if (name.rfind("sm", 0) == 0) {
      std::size_t d = 2;
      while (d < name.size() && std::isdigit(static_cast<unsigned char>(
                                    name[d]))) {
        ++d;
      }
      if (d > 2) name = "sm" + name.substr(d);
    }
    out[name] += value;
  }
  return out;
}

void ExpectIdentical(const SimResult& fresh, const SimResult& memo,
                     const std::string& what) {
  EXPECT_EQ(fresh.total_cycles, memo.total_cycles) << what;
  EXPECT_EQ(fresh.instructions, memo.instructions) << what;
  ASSERT_EQ(fresh.kernels.size(), memo.kernels.size()) << what;
  for (std::size_t k = 0; k < fresh.kernels.size(); ++k) {
    EXPECT_EQ(fresh.kernels[k].cycles, memo.kernels[k].cycles)
        << what << " kernel " << k;
    EXPECT_EQ(fresh.kernels[k].instructions, memo.kernels[k].instructions)
        << what << " kernel " << k;
  }
  EXPECT_EQ(AggregatedMetrics(fresh.metrics), AggregatedMetrics(memo.metrics))
      << what;
}

std::uint64_t Metric(const SimResult& r, const std::string& name) {
  const auto it = r.metrics.find(name);
  return it != r.metrics.end() ? it->second : 0;
}

TEST(Fingerprint, StableAcrossRebuilds) {
  const Application a = SmallApp("BFS");
  const Application b = SmallApp("BFS");
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t k = 0; k < a.kernels.size(); ++k) {
    EXPECT_EQ(FingerprintKernel(*a.kernels[k]),
              FingerprintKernel(*b.kernels[k]));
  }
  EXPECT_EQ(FingerprintApplication(a), FingerprintApplication(b));
}

TEST(Fingerprint, DistinguishesKernelsAndApps) {
  const Application bfs = SmallApp("BFS");
  const Application pr = SmallApp("PAGERANK");
  EXPECT_NE(FingerprintApplication(bfs), FingerprintApplication(pr));
  EXPECT_NE(FingerprintKernel(*bfs.kernels.front()),
            FingerprintKernel(*pr.kernels.front()));
}

/// Two-instruction probe kernel; `addr_perturb` shifts one lane address,
/// `regs` varies a KernelInfo field.
KernelTrace ProbeKernel(std::uint64_t addr_perturb, std::uint32_t regs) {
  KernelInfo info;
  info.name = "fp_probe";
  info.id = 7;
  info.num_ctas = 2;
  info.warps_per_cta = 1;
  info.threads_per_cta = 32;
  info.regs_per_thread = regs;
  WarpTrace w;
  TraceInstr ld;
  ld.pc = 0x10;
  ld.op = Opcode::kLdGlobal;
  ld.dst = 3;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    ld.addrs.push_back(0x1000 + lane * 4 + addr_perturb);
  }
  w.push_back(ld);
  TraceInstr ex;
  ex.pc = 0x18;
  ex.op = Opcode::kExit;
  w.push_back(ex);
  return KernelTrace(info, {CtaTrace{{w}}});
}

TEST(Fingerprint, SensitiveToSingleInstruction) {
  const KernelTrace base = ProbeKernel(0, 32);
  const KernelTrace same = ProbeKernel(0, 32);
  const KernelTrace one_addr = ProbeKernel(0x40, 32);
  EXPECT_EQ(FingerprintKernel(base), FingerprintKernel(same));
  EXPECT_NE(FingerprintKernel(base), FingerprintKernel(one_addr));
}

TEST(Fingerprint, SensitiveToKernelInfo) {
  const KernelTrace base = ProbeKernel(0, 32);
  const KernelTrace more_regs = ProbeKernel(0, 33);
  EXPECT_NE(FingerprintKernel(base), FingerprintKernel(more_regs));
}

TEST(Fingerprint, PinnedGoldenValue) {
  // Guards the on-disk MemoCache format: a silent fingerprint change
  // would orphan every persisted entry. Update deliberately when the
  // algorithm changes.
  EXPECT_EQ(FingerprintKernel(ProbeKernel(0, 32)).ToHex(),
            "fc61bb105012821af124ab8c06d73d7f");
}

TEST(CanonicalConfigHash, SensitiveToAnyIniField) {
  const GpuConfig base = SmallGpu();
  GpuConfig timing = base;
  timing.l2.latency += 1;
  GpuConfig knobs = base;
  knobs.memo.convergence_epsilon *= 2;
  EXPECT_EQ(base.CanonicalHash(), SmallGpu().CanonicalHash());
  EXPECT_NE(base.CanonicalHash(), timing.CanonicalHash());
  EXPECT_NE(base.CanonicalHash(), knobs.CanonicalHash());
}

TEST(GeometryHash, IgnoresTimingOnlyFields) {
  const GpuConfig base = SmallGpu();
  GpuConfig timing = base;
  timing.l2.latency += 7;
  timing.dram.latency += 2;
  GpuConfig geometry = base;
  geometry.l1.size_bytes *= 2;
  EXPECT_EQ(MemProfileGeometryHash(base), MemProfileGeometryHash(timing));
  EXPECT_NE(MemProfileGeometryHash(base), MemProfileGeometryHash(geometry));
}

TEST(MemoMemoryLevel, BitIdenticalReplay) {
  const GpuConfig cfg = SmallGpu();
  GpuConfig no_memo = cfg;
  no_memo.memo.enabled = false;
  for (const char* name : {"BFS", "PAGERANK"}) {
    const Application app = RepeatLaunches(SmallApp(name), 6);
    const SimResult fresh =
        RunSimulation(app, no_memo, SimLevel::kSwiftSimMemory);
    ClearGlobalCaches();
    const SimResult cold =
        RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
    const SimResult warm =
        RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
    ExpectIdentical(fresh, cold, std::string(name) + " cold");
    ExpectIdentical(fresh, warm, std::string(name) + " warm");
    EXPECT_GT(Metric(cold, "memo.hits"), 0u) << name;
    EXPECT_EQ(Metric(warm, "memo.misses"), 0u) << name;
    EXPECT_GT(Metric(warm, "memo.replayed_cycles"), 0u) << name;
  }
}

TEST(MemoMemoryLevel, ReplayAppliesToRepeatedLaunchesOnly) {
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("GEMM");  // no repeated kernels
  ClearGlobalCaches();
  const SimResult first =
      RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
  EXPECT_EQ(Metric(first, "memo.hits"), 0u);
  EXPECT_EQ(Metric(first, "memo.misses"),
            static_cast<std::uint64_t>(app.kernels.size()));
}

TEST(MemoBasicLevel, NoReplayWithoutConvergenceOptIn) {
  const GpuConfig cfg = SmallGpu();
  ClearGlobalCaches();
  const Application app = RepeatLaunches(SmallApp("BFS"), 3);
  const SimResult r = RunSimulation(app, cfg, SimLevel::kSwiftSimBasic);
  // Cycle-accurate memory without the convergence opt-in: the memo layer
  // must stay out of the run entirely.
  EXPECT_EQ(r.metrics.count("memo.hits"), 0u);
  EXPECT_EQ(MemoCache::Global().size(), 0u);
}

TEST(MemoDisabled, NoMemoBypassesEveryLayer) {
  GpuConfig cfg = SmallGpu();
  cfg.memo.enabled = false;
  ClearGlobalCaches();
  const Application app = RepeatLaunches(SmallApp("BFS"), 3);
  const SimResult r =
      RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
  EXPECT_EQ(r.metrics.count("memo.hits"), 0u);
  EXPECT_EQ(MemoCache::Global().size(), 0u);
  EXPECT_EQ(ProfileCache::Global().size(), 0u);
}

TEST(MemoDetailed, ConvergenceReplayWithinEpsilon) {
  GpuConfig cfg = SmallGpu();
  GpuConfig conv = cfg;
  conv.memo.detailed_convergence = true;
  const Application app = RepeatLaunches(SmallApp("BFS"), 8);
  const SimResult fresh = RunSimulation(app, cfg, SimLevel::kDetailed);
  ClearGlobalCaches();
  const SimResult replayed =
      RunSimulation(app, conv, SimLevel::kDetailed);
  EXPECT_GT(Metric(replayed, "memo.hits"), 0u);
  const double dev =
      std::abs(static_cast<double>(replayed.total_cycles) -
               static_cast<double>(fresh.total_cycles)) /
      static_cast<double>(fresh.total_cycles);
  EXPECT_LE(dev, 0.01) << "replayed=" << replayed.total_cycles
                       << " fresh=" << fresh.total_cycles;
}

TEST(MemoDetailed, ParallelDriverMatchesSerialConvergence) {
  GpuConfig conv = SmallGpu();
  conv.memo.detailed_convergence = true;
  const Application app = RepeatLaunches(SmallApp("BFS"), 6);
  ClearGlobalCaches();
  const SimResult serial =
      RunSimulation(app, conv, SimLevel::kDetailed);
  for (unsigned threads : {1u, 2u}) {
    ClearGlobalCaches();
    ParallelDetailedOptions opt;
    opt.num_threads = threads;
    opt.slack = 1;
    const SimResult par =
        RunParallelDetailed(app, conv, SimLevel::kDetailed, opt);
    // slack=1 is bit-identical to the serial loop, so the convergence
    // bookkeeping sees the same cycle counts and replays the same tail.
    EXPECT_EQ(par.total_cycles, serial.total_cycles) << threads;
    EXPECT_EQ(par.instructions, serial.instructions) << threads;
    EXPECT_EQ(Metric(par, "memo.hits"), Metric(serial, "memo.hits"))
        << threads;
  }
}

TEST(MemoCacheFile, SaveLoadRoundTrip) {
  const GpuConfig cfg = SmallGpu();
  const Application app = RepeatLaunches(SmallApp("PAGERANK"), 4);
  ClearGlobalCaches();
  const SimResult cold =
      RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
  ASSERT_GT(MemoCache::Global().size(), 0u);
  const std::string path = testing::TempDir() + "memo_cache_roundtrip.txt";
  MemoCache::Global().SaveToFile(path);
  MemoCache::Global().Clear();
  MemoCache::Global().LoadFromFile(path);
  const SimResult warm =
      RunSimulation(app, cfg, SimLevel::kSwiftSimMemory);
  EXPECT_EQ(Metric(warm, "memo.misses"), 0u);
  ExpectIdentical(cold, warm, "after reload");
  std::remove(path.c_str());
}

TEST(MemoCacheFile, RejectsUnknownFormat) {
  const std::string path = testing::TempDir() + "memo_cache_bad.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-memo-cache\n", f);
  std::fclose(f);
  MemoCache cache;
  EXPECT_THROW(cache.LoadFromFile(path), SimError);
  std::remove(path.c_str());
}

TEST(ProfileCache, SharedAcrossGeometryEqualConfigs) {
  const GpuConfig base = SmallGpu();
  GpuConfig timing = base;
  timing.dram.latency += 4;
  GpuConfig geometry = base;
  geometry.l1.size_bytes *= 2;
  const Application app = SmallApp("BFS");
  ProfileCache cache;
  const auto first = cache.GetOrBuild(app, base);
  const auto same = cache.GetOrBuild(app, timing);
  const auto other = cache.GetOrBuild(app, geometry);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(same.hit);
  EXPECT_EQ(first.profile.get(), same.profile.get());
  EXPECT_FALSE(other.hit);
  EXPECT_NE(first.profile.get(), other.profile.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

MemoKey EvictKey(std::uint64_t n) {
  MemoKey key;
  key.cfg_hash = 0x1234;
  key.context = n;
  key.level = 2;
  return key;
}

LaunchRecord EvictRecord() {
  LaunchRecord rec;
  rec.cycles = 100;
  rec.instructions = 50;
  rec.metric_deltas.emplace_back("sm0.issued_instrs", 50);
  return rec;
}

TEST(MemoEviction, EntryCapHolds) {
  MemoCache cache;
  cache.SetLimits(/*max_entries=*/3, /*max_bytes=*/0);
  for (std::uint64_t n = 0; n < 8; ++n) {
    cache.RecordLaunch(EvictKey(n), EvictRecord(), /*exact=*/true,
                       /*min_repeats=*/0, /*epsilon=*/0.0);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 5u);
}

TEST(MemoEviction, LeastReplayedEvictedFirst) {
  MemoCache cache;
  for (std::uint64_t n = 0; n < 4; ++n) {
    cache.RecordLaunch(EvictKey(n), EvictRecord(), /*exact=*/true,
                       /*min_repeats=*/0, /*epsilon=*/0.0);
  }
  // Keys 0 and 2 earn their slots with replays; 1 and 3 never hit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cache.TryReplay(EvictKey(0)).has_value());
    EXPECT_TRUE(cache.TryReplay(EvictKey(2)).has_value());
  }
  cache.SetLimits(/*max_entries=*/2, /*max_bytes=*/0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_TRUE(cache.TryReplay(EvictKey(0)).has_value());
  EXPECT_TRUE(cache.TryReplay(EvictKey(2)).has_value());
  EXPECT_FALSE(cache.TryReplay(EvictKey(1)).has_value());
  EXPECT_FALSE(cache.TryReplay(EvictKey(3)).has_value());
}

TEST(MemoEviction, ReplayTieBreaksLeastRecent) {
  MemoCache cache;
  for (std::uint64_t n = 0; n < 3; ++n) {
    cache.RecordLaunch(EvictKey(n), EvictRecord(), /*exact=*/true,
                       /*min_repeats=*/0, /*epsilon=*/0.0);
  }
  // Equal replay counts; touch order 1, 2, 0 makes key 1 least recent.
  EXPECT_TRUE(cache.TryReplay(EvictKey(1)).has_value());
  EXPECT_TRUE(cache.TryReplay(EvictKey(2)).has_value());
  EXPECT_TRUE(cache.TryReplay(EvictKey(0)).has_value());
  cache.SetLimits(/*max_entries=*/2, /*max_bytes=*/0);
  EXPECT_FALSE(cache.TryReplay(EvictKey(1)).has_value());
  EXPECT_TRUE(cache.TryReplay(EvictKey(2)).has_value());
  EXPECT_TRUE(cache.TryReplay(EvictKey(0)).has_value());
}

TEST(MemoEviction, ByteCapHolds) {
  MemoCache cache;
  for (std::uint64_t n = 0; n < 6; ++n) {
    cache.RecordLaunch(EvictKey(n), EvictRecord(), /*exact=*/true,
                       /*min_repeats=*/0, /*epsilon=*/0.0);
  }
  ASSERT_GT(cache.bytes(), 0u);
  const std::uint64_t per_entry = cache.bytes() / cache.size();
  cache.SetLimits(/*max_entries=*/0, /*max_bytes=*/3 * per_entry);
  EXPECT_LE(cache.bytes(), 3 * per_entry);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.size(), 3u);
}

TEST(MemoEviction, UnboundedByDefault) {
  MemoCache cache;
  for (std::uint64_t n = 0; n < 64; ++n) {
    cache.RecordLaunch(EvictKey(n), EvictRecord(), /*exact=*/true,
                       /*min_repeats=*/0, /*epsilon=*/0.0);
  }
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(MemoEviction, CappedRunStaysExact) {
  // End-to-end: a tiny entry cap forces constant churn yet every replayed
  // result must stay bit-identical to the fresh run.
  ClearGlobalCaches();
  GpuConfig fresh_cfg = SmallGpu();
  fresh_cfg.memo.enabled = false;
  GpuConfig capped = SmallGpu();
  capped.memo.enabled = true;
  capped.memo.max_entries = 1;
  const Application app = RepeatLaunches(SmallApp("BFS"), 4);
  const SimResult fresh =
      RunSimulation(app, fresh_cfg, SimLevel::kSwiftSimMemory);
  const SimResult memo =
      RunSimulation(app, capped, SimLevel::kSwiftSimMemory);
  ExpectIdentical(fresh, memo, "capped memo run");
  ClearGlobalCaches();
}

TEST(ProfileCacheEviction, LruCapHolds) {
  const Application bfs = SmallApp("BFS");
  const Application pr = SmallApp("PAGERANK");
  const Application sm = SmallApp("SM");
  const GpuConfig cfg = SmallGpu();
  ProfileCache cache;
  cache.SetMaxEntries(2);
  (void)cache.GetOrBuild(bfs, cfg);
  (void)cache.GetOrBuild(pr, cfg);
  EXPECT_TRUE(cache.GetOrBuild(bfs, cfg).hit);  // bfs now most recent
  (void)cache.GetOrBuild(sm, cfg);              // evicts pr (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.GetOrBuild(bfs, cfg).hit);
  EXPECT_TRUE(cache.GetOrBuild(sm, cfg).hit);
  EXPECT_FALSE(cache.GetOrBuild(pr, cfg).hit);
}

}  // namespace
}  // namespace swiftsim
