#include "analytical/reuse_distance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"

namespace swiftsim {
namespace {

TEST(ReuseDistance, ColdMissesCounted) {
  ReuseDistanceProfiler prof;
  prof.Access(0);
  prof.Access(128);
  prof.Access(256);
  EXPECT_EQ(prof.accesses(), 3u);
  EXPECT_EQ(prof.cold_misses(), 3u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero) {
  ReuseDistanceProfiler prof;
  prof.Access(0);
  prof.Access(0);
  EXPECT_EQ(prof.DistanceCount(0), 1u);
}

TEST(ReuseDistance, ClassicSequence) {
  // a b c b a: reuse(b)=1 (c between), reuse(a)=2 (c and b distinct).
  ReuseDistanceProfiler prof;
  prof.Access('a');
  prof.Access('b');
  prof.Access('c');
  prof.Access('b');
  prof.Access('a');
  EXPECT_EQ(prof.cold_misses(), 3u);
  EXPECT_EQ(prof.DistanceCount(1), 1u);
  EXPECT_EQ(prof.DistanceCount(2), 1u);
  EXPECT_EQ(prof.DistanceCount(0), 0u);
}

TEST(ReuseDistance, DuplicatesDoNotInflateDistance) {
  // a b b b a: only ONE distinct line (b) between the two a's.
  ReuseDistanceProfiler prof;
  prof.Access('a');
  prof.Access('b');
  prof.Access('b');
  prof.Access('b');
  prof.Access('a');
  EXPECT_EQ(prof.DistanceCount(1), 1u);  // the final a
  EXPECT_EQ(prof.DistanceCount(0), 2u);  // b->b twice
}

TEST(ReuseDistance, HitRateMatchesLruStackProperty) {
  // Cyclic sweep over N lines: cache of >= N lines hits everything after
  // the cold pass; any smaller LRU cache misses everything.
  ReuseDistanceProfiler prof;
  const unsigned kLines = 16;
  const unsigned kRounds = 10;
  for (unsigned r = 0; r < kRounds; ++r) {
    for (unsigned l = 0; l < kLines; ++l) prof.Access(l * 128);
  }
  const double total = kLines * kRounds;
  const double warm = (kRounds - 1.0) * kLines / total;
  EXPECT_NEAR(prof.HitRateForCapacity(16), warm, 1e-9);
  EXPECT_NEAR(prof.HitRateForCapacity(15), 0.0, 1e-9);
  EXPECT_NEAR(prof.HitRateForCapacity(1000), warm, 1e-9);
}

TEST(ReuseDistance, HitRateMonotoneInCapacity) {
  ReuseDistanceProfiler prof;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    prof.Access(rng.Below(512) * 128);
  }
  double prev = -1.0;
  for (std::uint64_t cap : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    const double rate = prof.HitRateForCapacity(cap);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
  EXPECT_GT(prof.HitRateForCapacity(1024), 0.9);  // footprint fits
}

TEST(ReuseDistance, EmptyProfilerIsZero) {
  ReuseDistanceProfiler prof;
  EXPECT_DOUBLE_EQ(prof.HitRateForCapacity(100), 0.0);
}

TEST(ReuseDistance, DistanceOutOfRangeThrows) {
  ReuseDistanceProfiler prof(16);
  EXPECT_THROW(prof.DistanceCount(16), SimError);
}

}  // namespace
}  // namespace swiftsim
