// Gates for the dependency task-graph scheduler and the drivers built on
// it (DESIGN.md §12): scheduler-level ordering/round/error semantics, the
// task-graph detailed driver's bit-identity matrix (worker counts × cycle
// skipping × fault injection), the two-mode batch decision table and its
// over-subscription invariant, and mode-equivalence of batch results.
#include "common/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "config/presets.h"
#include "swiftsim/fault_inject.h"
#include "swiftsim/parallel.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

// --- Scheduler unit gates -------------------------------------------------

TEST(TaskGraph, ChainExecutesInEdgeOrderEveryRound) {
  TaskGraph g;
  std::vector<int> seq;  // ordered by the chain's edges (the contract)
  int round = 0;
  const int a = g.AddTask("a", [&] { seq.push_back(0); });
  const int b = g.AddTask("b", [&] { seq.push_back(1); });
  g.AddTask("c", [&] {
    seq.push_back(2);
    if (++round == 5) g.Finish();
  });
  g.AddEdge(a, b);
  g.AddEdge(b, b + 1);
  g.Run(ThreadPool::Shared(), 4);
  EXPECT_EQ(g.rounds(), 5u);
  EXPECT_EQ(g.executed(), 15u);
  ASSERT_EQ(seq.size(), 15u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], static_cast<int>(i % 3)) << "position " << i;
  }
}

TEST(TaskGraph, DiamondWaitsForAllDependencies) {
  TaskGraph g;
  std::atomic<int> a_runs{0};
  std::atomic<int> rounds_done{0};
  std::atomic<bool> order_ok{true};
  const int a = g.AddTask("a", [&] { a_runs.fetch_add(1); });
  auto check_after_a = [&] {
    // Within a round, b/c run strictly after a; d completing bumps
    // rounds_done, so a must be exactly one execution ahead of it here.
    if (a_runs.load() != rounds_done.load() + 1) order_ok = false;
  };
  const int b = g.AddTask("b", check_after_a);
  const int c = g.AddTask("c", check_after_a);
  const int d = g.AddTask("d", [&] {
    check_after_a();
    if (rounds_done.fetch_add(1) + 1 == 3) g.Finish();
  });
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  g.Run(ThreadPool::Shared(), 4);
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(g.rounds(), 3u);
  EXPECT_EQ(g.executed(), 12u);
}

TEST(TaskGraph, TaskExceptionDrainsRoundAndRethrows) {
  TaskGraph g;
  int rounds = 0;
  const int a = g.AddTask("a", [] {});
  g.AddTask("boom", [&] {
    if (++rounds == 3) throw SimError("boom");
  });
  g.AddEdge(a, a + 1);
  EXPECT_THROW(g.Run(ThreadPool::Shared(), 2), SimError);
  EXPECT_EQ(rounds, 3);
}

TEST(TaskGraph, RejectsEmptyAndRootlessGraphs) {
  TaskGraph empty;
  EXPECT_THROW(empty.Run(ThreadPool::Shared(), 1), SimError);
  TaskGraph cyc;
  const int a = cyc.AddTask("a", [] {});
  const int b = cyc.AddTask("b", [] {});
  cyc.AddEdge(a, b);
  cyc.AddEdge(b, a);
  EXPECT_THROW(cyc.Run(ThreadPool::Shared(), 2), SimError);
}

TEST(TaskGraph, LivenessNeverDependsOnPoolWorkersAndRunsAreReusable) {
  // Joiners are a concurrency hint: even asking for far more workers than
  // the host has threads, the caller alone can finish every round by
  // stealing. Run() also resets all scheduler state, so the same graph
  // re-runs cleanly.
  TaskGraph g;
  int rounds = 0;
  g.AddTask("only", [&] {
    if (++rounds % 50 == 0) g.Finish();
  });
  g.Run(ThreadPool::Shared(), 8);
  EXPECT_EQ(g.rounds(), 50u);
  g.Run(ThreadPool::Shared(), 8);
  EXPECT_EQ(g.rounds(), 50u);
  EXPECT_EQ(rounds, 100);
}

// --- Driver bit-identity matrix -------------------------------------------

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 8;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application SmallApp(const std::string& name) {
  WorkloadScale s;
  s.scale = 0.03;
  return BuildWorkload(name, s);
}

void ExpectSameNumbers(const SimResult& x, const SimResult& y,
                       const std::string& what) {
  EXPECT_EQ(x.total_cycles, y.total_cycles) << what;
  EXPECT_EQ(x.instructions, y.instructions) << what;
  ASSERT_EQ(x.kernels.size(), y.kernels.size()) << what;
  for (std::size_t k = 0; k < x.kernels.size(); ++k) {
    EXPECT_EQ(x.kernels[k].cycles, y.kernels[k].cycles)
        << what << " kernel " << x.kernels[k].name;
  }
}

/// Everything except driver telemetry (driver.* describes how the run was
/// executed — rounds, steals, skip spans — not what was simulated).
std::vector<std::pair<std::string, std::uint64_t>> NonDriverMetrics(
    const SimResult& r) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : r.metrics) {
    if (name.rfind("driver.", 0) == 0) continue;
    out.emplace_back(name, value);
  }
  return out;
}

TEST(TaskGraphDriver, BitIdentityAcrossWorkersAndCycleSkip) {
  for (const bool skip : {false, true}) {
    GpuConfig cfg = SmallGpu();
    cfg.cycle_skip = skip;
    const Application app = SmallApp("SM");
    const SimResult serial = RunSimulation(app, cfg, SimLevel::kDetailed);
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      ParallelDetailedOptions opt;
      opt.num_threads = threads;
      opt.slack = 1;
      const SimResult par =
          RunParallelDetailed(app, cfg, SimLevel::kDetailed, opt);
      const std::string what = std::string("skip=") +
                               (skip ? "on" : "off") + "/t" +
                               std::to_string(threads);
      ExpectSameNumbers(serial, par, what);
      EXPECT_EQ(NonDriverMetrics(serial), NonDriverMetrics(par)) << what;
    }
  }
}

TEST(TaskGraphDriver, ClusterPartitioningDoesNotChangeResults) {
  // Cluster count is a scheduling knob, not a model knob: a non-divisor
  // cluster count (uneven SM ranges) and more clusters than workers both
  // yield the serial result.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("BFS");
  const SimResult serial = RunSimulation(app, cfg, SimLevel::kDetailed);
  for (const unsigned clusters : {1u, 3u, 8u, 64u}) {
    ParallelDetailedOptions opt;
    opt.num_threads = 2;
    opt.slack = 1;
    opt.clusters = clusters;
    const SimResult par =
        RunParallelDetailed(app, cfg, SimLevel::kDetailed, opt);
    ExpectSameNumbers(serial, par,
                      "clusters=" + std::to_string(clusters));
    EXPECT_EQ(par.metrics.at("driver.tg_clusters"),
              std::min(clusters, cfg.num_sms));
  }
}

TEST(TaskGraphDriver, ArmedFaultPlanStaysIdenticalAcrossWorkers) {
  // Fault decisions are stateless hashes, so the task-graph driver must
  // replay the serial fault schedule exactly for any worker count.
  const GpuConfig cfg = SmallGpu();
  const Application app = SmallApp("SM");
  FaultPlan plan;
  plan.name = "matrix";
  plan.seed = 7;
  plan.resp_delay_p = 0.3;
  plan.resp_delay_cycles = 9;
  plan.resp_drop_p = 0.2;
  plan.resp_retry_cycles = 40;
  plan.resp_max_drops = 2;
  plan.issue_stall_p = 0.1;
  plan.issue_stall_cycles = 12;
  FaultInjector serial_inj(plan, cfg.num_sms);
  GpuModel serial_model(cfg, SelectionFor(SimLevel::kDetailed));
  serial_model.ArmFaults(&serial_inj);
  const SimResult serial = serial_model.RunApplication(app);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    FaultInjector inj(plan, cfg.num_sms);
    ParallelDetailedOptions opt;
    opt.num_threads = threads;
    opt.slack = 1;
    opt.fault = &inj;
    const SimResult par =
        RunParallelDetailed(app, cfg, SimLevel::kDetailed, opt);
    ExpectSameNumbers(serial, par, "fault/t" + std::to_string(threads));
    EXPECT_FALSE(inj.AnyHeld());
  }
}

// --- Two-mode batch policy ------------------------------------------------

TEST(BatchPlanPolicy, DecisionTable) {
  // Analytical-memory levels always run app-parallel.
  BatchPlan p = PlanParallelBatch(2, 8, /*cycle_accurate_mem=*/false,
                                  ParallelMode::kAuto);
  EXPECT_EQ(p.chosen, ParallelMode::kApp);
  EXPECT_EQ(p.app_lanes, 2u);
  EXPECT_EQ(p.threads_per_app, 1u);

  // Auto, apps >= budget: app-parallel fills the machine by itself.
  p = PlanParallelBatch(8, 4, true, ParallelMode::kAuto);
  EXPECT_EQ(p.chosen, ParallelMode::kApp);
  EXPECT_EQ(p.app_lanes, 4u);
  EXPECT_EQ(p.threads_per_app, 1u);

  // Auto, apps < budget: mix — spare threads go inside the lanes.
  p = PlanParallelBatch(2, 8, true, ParallelMode::kAuto);
  EXPECT_EQ(p.chosen, ParallelMode::kIntra);
  EXPECT_EQ(p.app_lanes, 2u);
  EXPECT_EQ(p.threads_per_app, 4u);

  // Non-divisor mix rounds down, never over the budget.
  p = PlanParallelBatch(3, 8, true, ParallelMode::kAuto);
  EXPECT_EQ(p.app_lanes, 3u);
  EXPECT_EQ(p.threads_per_app, 2u);

  // Explicit intra: one app at a time on the whole budget.
  p = PlanParallelBatch(8, 4, true, ParallelMode::kIntra);
  EXPECT_EQ(p.chosen, ParallelMode::kIntra);
  EXPECT_EQ(p.app_lanes, 1u);
  EXPECT_EQ(p.threads_per_app, 4u);

  // Explicit app with spare budget stays one thread per app.
  p = PlanParallelBatch(2, 8, true, ParallelMode::kApp);
  EXPECT_EQ(p.chosen, ParallelMode::kApp);
  EXPECT_EQ(p.app_lanes, 2u);
  EXPECT_EQ(p.threads_per_app, 1u);

  // Degenerate shapes stay sane.
  p = PlanParallelBatch(0, 8, true, ParallelMode::kAuto);
  EXPECT_EQ(p.app_lanes, 1u);
  EXPECT_EQ(p.threads_per_app, 1u);
}

TEST(BatchPlanPolicy, NeverOversubscribesTheThreadBudget) {
  // Satellite fix for the over-subscription bug: apps × per-app workers
  // must never exceed the requested budget, for any shape or mode.
  for (const ParallelMode mode :
       {ParallelMode::kAuto, ParallelMode::kApp, ParallelMode::kIntra}) {
    for (std::size_t apps = 0; apps <= 10; ++apps) {
      for (unsigned threads = 1; threads <= 12; ++threads) {
        const BatchPlan p = PlanParallelBatch(apps, threads, true, mode);
        EXPECT_LE(p.app_lanes * p.threads_per_app, threads)
            << ToString(mode) << " apps=" << apps << " threads=" << threads;
        EXPECT_GE(p.app_lanes, 1u);
        EXPECT_GE(p.threads_per_app, 1u);
      }
    }
  }
}

TEST(BatchModes, IdenticalResultsAcrossModeKnob) {
  // The mode knob moves work between threads, never between models: every
  // mode produces the serial numbers for every app in the batch.
  GpuConfig cfg = SmallGpu();
  const std::vector<Application> apps = {SmallApp("SM"), SmallApp("BFS")};
  std::vector<SimResult> serial;
  for (const Application& app : apps) {
    serial.push_back(RunSimulation(app, cfg, SimLevel::kSwiftSimBasic));
  }
  for (const ParallelMode mode :
       {ParallelMode::kApp, ParallelMode::kAuto, ParallelMode::kIntra}) {
    cfg.parallel.mode = mode;
    const ParallelBatchResult batch =
        RunAppsParallel(apps, cfg, SimLevel::kSwiftSimBasic, 4);
    ASSERT_EQ(batch.results.size(), apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
      ExpectSameNumbers(serial[i], batch.results[i],
                        std::string(ToString(mode)) + "/" + apps[i].name);
    }
  }
}

TEST(BatchModes, IsolatedBatchUsesIntraLanesWhenEligible) {
  GpuConfig cfg = SmallGpu();
  cfg.parallel.mode = ParallelMode::kAuto;
  const std::vector<Application> apps = {SmallApp("SM")};
  const SimResult serial =
      RunSimulation(apps[0], cfg, SimLevel::kSwiftSimBasic);
  BatchOptions options;
  options.isolate_failures = true;
  const ParallelBatchResult batch =
      RunAppsParallel(apps, cfg, SimLevel::kSwiftSimBasic, 4, options);
  ASSERT_EQ(batch.statuses.size(), 1u);
  EXPECT_EQ(batch.statuses[0].status, AppStatus::kOk);
  ExpectSameNumbers(serial, batch.results[0], "isolated intra");
  // One app, four threads, auto mode → the task-graph driver ran it.
  EXPECT_EQ(batch.results[0].simulator,
            ToString(SimLevel::kSwiftSimBasic) + "+taskgraph");
}

TEST(BatchModes, FaultPlanForcesAppParallelLanes) {
  // Fault injection needs the resilient serial driver; the planner must
  // not route such batches through intra-app sharding.
  GpuConfig cfg = SmallGpu();
  cfg.parallel.mode = ParallelMode::kAuto;
  const std::vector<Application> apps = {SmallApp("SM")};
  FaultPlan plan;  // armed but empty: the seam must still force app mode
  BatchOptions options;
  options.isolate_failures = true;
  options.fault_plan = &plan;
  const ParallelBatchResult batch =
      RunAppsParallel(apps, cfg, SimLevel::kSwiftSimBasic, 4, options);
  ASSERT_EQ(batch.results.size(), 1u);
  EXPECT_EQ(batch.statuses[0].status, AppStatus::kOk);
  EXPECT_EQ(batch.results[0].simulator,
            ToString(SimLevel::kSwiftSimBasic));
}

}  // namespace
}  // namespace swiftsim
