#include "mem/tag_array.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

CacheParams SmallCache(ReplacementPolicy pol = ReplacementPolicy::kLru) {
  CacheParams p;
  p.size_bytes = 2 * 128 * 2;  // 2 sets x 2 ways x 128B lines
  p.assoc = 2;
  p.line_bytes = 128;
  p.sector_bytes = 32;
  p.banks = 1;
  p.replacement = pol;
  return p;
}

// Addresses mapping to set 0 of the 2-set cache: line index even.
constexpr Addr kSet0A = 0 * 128;
constexpr Addr kSet0B = 2 * 128;
constexpr Addr kSet0C = 4 * 128;

TEST(TagArray, MissReservesThenFillsThenHits) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  EXPECT_EQ(tags.Probe(kSet0A, 0x1, 1, &ev), TagOutcome::kMiss);
  EXPECT_FALSE(ev.valid);
  EXPECT_FALSE(tags.IsHit(kSet0A, 0x1));  // reserved, not valid yet
  tags.Fill(kSet0A, 0x1, 2);
  EXPECT_TRUE(tags.IsHit(kSet0A, 0x1));
  EXPECT_EQ(tags.Probe(kSet0A, 0x1, 3, &ev), TagOutcome::kHit);
}

TEST(TagArray, SectorMissOnPartialLine) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  tags.Probe(kSet0A, 0x1, 1, &ev);
  tags.Fill(kSet0A, 0x1, 2);
  // Sector 2 not resident: line present -> sector miss.
  EXPECT_EQ(tags.Probe(kSet0A, 0x4, 3, &ev), TagOutcome::kSectorMiss);
  tags.Fill(kSet0A, 0x4, 4);
  EXPECT_EQ(tags.Probe(kSet0A, 0x5, 5, &ev), TagOutcome::kHit);
}

TEST(TagArray, ReservationFailWhenAllWaysPending) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  EXPECT_EQ(tags.Probe(kSet0A, 0x1, 1, &ev), TagOutcome::kMiss);
  EXPECT_EQ(tags.Probe(kSet0B, 0x1, 2, &ev), TagOutcome::kMiss);
  // Both ways of set 0 reserved; a third line cannot be victimized.
  EXPECT_EQ(tags.Probe(kSet0C, 0x1, 3, &ev), TagOutcome::kReservationFail);
  tags.Fill(kSet0A, 0x1, 4);
  // Now A is evictable.
  EXPECT_EQ(tags.Probe(kSet0C, 0x1, 5, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, kSet0A);
}

TEST(TagArray, LruEvictsLeastRecentlyUsed) {
  TagArray tags(SmallCache(ReplacementPolicy::kLru), 1);
  Eviction ev;
  tags.Probe(kSet0A, 0x1, 1, &ev);
  tags.Fill(kSet0A, 0x1, 1);
  tags.Probe(kSet0B, 0x1, 2, &ev);
  tags.Fill(kSet0B, 0x1, 2);
  tags.Probe(kSet0A, 0x1, 3, &ev);  // touch A -> B is LRU
  EXPECT_EQ(tags.Probe(kSet0C, 0x1, 4, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, kSet0B);
}

TEST(TagArray, FifoIgnoresRecency) {
  TagArray tags(SmallCache(ReplacementPolicy::kFifo), 1);
  Eviction ev;
  tags.Probe(kSet0A, 0x1, 1, &ev);
  tags.Fill(kSet0A, 0x1, 1);
  tags.Probe(kSet0B, 0x1, 2, &ev);
  tags.Fill(kSet0B, 0x1, 2);
  tags.Probe(kSet0A, 0x1, 3, &ev);  // touching A does NOT protect it
  EXPECT_EQ(tags.Probe(kSet0C, 0x1, 4, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, kSet0A);  // oldest allocation evicted
}

TEST(TagArray, RandomPolicyEvictsSomething) {
  TagArray tags(SmallCache(ReplacementPolicy::kRandom), 7);
  Eviction ev;
  tags.Probe(kSet0A, 0x1, 1, &ev);
  tags.Fill(kSet0A, 0x1, 1);
  tags.Probe(kSet0B, 0x1, 2, &ev);
  tags.Fill(kSet0B, 0x1, 2);
  EXPECT_EQ(tags.Probe(kSet0C, 0x1, 3, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(ev.valid);
  EXPECT_TRUE(ev.line_addr == kSet0A || ev.line_addr == kSet0B);
}

TEST(TagArray, MarkDirtyValidatesSectors) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  tags.Probe(kSet0A, 0x1, 1, &ev);
  tags.Fill(kSet0A, 0x1, 1);
  EXPECT_TRUE(tags.MarkDirty(kSet0A, 0x2, 2));
  EXPECT_TRUE(tags.IsHit(kSet0A, 0x2));  // full-sector write validates
  EXPECT_FALSE(tags.MarkDirty(kSet0B, 0x1, 3));  // absent line
}

TEST(TagArray, WriteValidateInstallsDirtyLine) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  EXPECT_EQ(tags.WriteValidate(kSet0A, 0x3, 1, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(tags.IsHit(kSet0A, 0x3));
  EXPECT_EQ(tags.WriteValidate(kSet0A, 0x4, 2, &ev), TagOutcome::kHit);
  // Evicting the dirty line reports its dirty sectors.
  tags.WriteValidate(kSet0B, 0x1, 3, &ev);
  EXPECT_EQ(tags.WriteValidate(kSet0C, 0x1, 4, &ev), TagOutcome::kMiss);
  EXPECT_TRUE(ev.valid);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(ev.dirty_sectors & 0x7u, ev.dirty_sectors);
}

TEST(TagArray, FillAllocateInstallsWithoutReservation) {
  TagArray tags(SmallCache(), 1);
  Eviction ev;
  tags.FillAllocate(kSet0A, 0x3, 1, &ev);
  EXPECT_FALSE(ev.valid);
  EXPECT_TRUE(tags.IsHit(kSet0A, 0x3));
  // Extending an existing line adds sectors, no eviction.
  tags.FillAllocate(kSet0A, 0x4, 2, &ev);
  EXPECT_FALSE(ev.valid);
  EXPECT_TRUE(tags.IsHit(kSet0A, 0x7));
  // Filling a third line into the 2-way set evicts.
  tags.FillAllocate(kSet0B, 0x1, 3, &ev);
  tags.FillAllocate(kSet0C, 0x1, 4, &ev);
  EXPECT_TRUE(ev.valid);
}

TEST(TagArray, FillOfUnknownLineIsIgnored) {
  TagArray tags(SmallCache(), 1);
  tags.Fill(kSet0A, 0xF, 1);  // never probed/reserved
  EXPECT_FALSE(tags.IsHit(kSet0A, 0x1));
}

}  // namespace
}  // namespace swiftsim
