#include "mem/dram.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

DramConfig SmallDram() {
  DramConfig cfg;
  cfg.latency = 100;
  cfg.row_hit_latency = 40;
  cfg.row_bytes = 1024;
  cfg.bytes_per_cycle = 32;
  cfg.queue_depth = 4;
  return cfg;
}

MemRequest Read(Addr line, std::uint64_t id) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = 0xF;
  r.id = id;
  return r;
}

MemRequest Write(Addr line) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = 0xF;
  r.type = MemAccessType::kStore;
  return r;
}

Cycle RunUntilResponse(DramChannel& dram, Cycle now, Cycle limit) {
  for (; now < limit; ++now) {
    dram.Tick(now);
    if (!dram.responses().empty()) return now;
  }
  return limit;
}

TEST(Dram, ClosedRowLatency) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  ASSERT_TRUE(dram.Enqueue(Read(0x0, 1)));
  const Cycle done = RunUntilResponse(dram, 0, 1000);
  // access latency 100 + transfer ceil(128/32)=4.
  EXPECT_EQ(done, 104u);
  EXPECT_EQ(dram.stats().row_misses, 1u);
}

TEST(Dram, RowHitIsFaster) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  ASSERT_TRUE(dram.Enqueue(Read(0x0, 1)));
  Cycle now = RunUntilResponse(dram, 0, 1000);
  dram.responses().clear();
  // Same 1KB row.
  ASSERT_TRUE(dram.Enqueue(Read(0x80, 2)));
  const Cycle start = now + 1;
  const Cycle done = RunUntilResponse(dram, start, start + 1000);
  EXPECT_LT(done - start, 60u);  // row-hit latency 40 + transfer
  EXPECT_EQ(dram.stats().row_hits, 1u);
}

TEST(Dram, FrFcfsPrefersRowHitInWindow) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  ASSERT_TRUE(dram.Enqueue(Read(0x0, 1)));      // opens row 0
  Cycle now = RunUntilResponse(dram, 0, 1000);
  dram.responses().clear();
  // Queue: row-1 (miss) then row-0 (hit). FR-FCFS serves the hit first.
  ASSERT_TRUE(dram.Enqueue(Read(0x400, 2)));
  ASSERT_TRUE(dram.Enqueue(Read(0x80, 3)));
  now = RunUntilResponse(dram, now + 1, now + 1000);
  ASSERT_EQ(dram.responses().size(), 1u);
  EXPECT_EQ(dram.responses().front().id, 3u);  // the row hit
}

TEST(Dram, WritesConsumeBandwidthSilently) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  ASSERT_TRUE(dram.Enqueue(Write(0x0)));
  for (Cycle now = 0; now < 300; ++now) dram.Tick(now);
  EXPECT_TRUE(dram.responses().empty());
  EXPECT_EQ(dram.stats().writes, 1u);
  EXPECT_EQ(dram.stats().bytes, 128u);
  EXPECT_TRUE(dram.quiescent());
}

TEST(Dram, QueueDepthBackpressure) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(dram.Enqueue(Read(static_cast<Addr>(i) * 0x1000, i + 1)));
  }
  EXPECT_FALSE(dram.Enqueue(Read(0x9000, 9)));
  EXPECT_EQ(dram.stats().enqueue_stalls, 1u);
}

TEST(Dram, RefreshBlocksChannelWhenEnabled) {
  SiliconEffects fx;
  fx.enabled = true;
  fx.dram_refresh_interval = 50;
  fx.dram_refresh_penalty = 500;
  DramChannel with_refresh(SmallDram(), 32, fx);
  DramChannel without(SmallDram(), 32, SiliconEffects{});
  // Enqueue after the refresh point so the penalty delays service.
  for (Cycle now = 0; now < 60; ++now) {
    with_refresh.Tick(now);
    without.Tick(now);
  }
  ASSERT_TRUE(with_refresh.Enqueue(Read(0x0, 1)));
  ASSERT_TRUE(without.Enqueue(Read(0x0, 1)));
  const Cycle t_with = RunUntilResponse(with_refresh, 60, 5000);
  const Cycle t_without = RunUntilResponse(without, 60, 5000);
  EXPECT_GT(t_with, t_without);
  EXPECT_GE(with_refresh.stats().refreshes, 1u);
}

TEST(Dram, ResponsesPreserveRequestIdentity) {
  DramChannel dram(SmallDram(), 32, SiliconEffects{});
  MemRequest r = Read(0x1280, 77);
  r.sm = 5;
  r.sector_mask = 0x6;
  ASSERT_TRUE(dram.Enqueue(r));
  RunUntilResponse(dram, 0, 1000);
  ASSERT_EQ(dram.responses().size(), 1u);
  const MemResponse& resp = dram.responses().front();
  EXPECT_EQ(resp.id, 77u);
  EXPECT_EQ(resp.sm, 5u);
  EXPECT_EQ(resp.sector_mask, 0x6u);
  EXPECT_EQ(resp.line_addr, 0x1280u);
}

}  // namespace
}  // namespace swiftsim
