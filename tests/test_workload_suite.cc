// Property tests over all 18 registered workloads: structural validity,
// determinism, scale behavior, and per-kind characteristics.
#include <gtest/gtest.h>

#include "common/status.h"
#include "trace/trace_stats.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

WorkloadScale TestScale() {
  WorkloadScale s;
  s.scale = 0.05;
  return s;
}

TEST(WorkloadRegistry, Has18PaperApps) {
  EXPECT_EQ(AllWorkloads().size(), 18u);
  EXPECT_EQ(WorkloadByName("BFS").suite, "rodinia");
  EXPECT_EQ(WorkloadByName("ADI").suite, "polybench");
  EXPECT_EQ(WorkloadByName("SM").suite, "mars");
  EXPECT_EQ(WorkloadByName("GRU").suite, "tango");
  EXPECT_EQ(WorkloadByName("SSSP").suite, "pannotia");
  EXPECT_THROW(WorkloadByName("NOPE"), SimError);
  EXPECT_THROW(BuildWorkload("NOPE", TestScale()), SimError);
}

TEST(WorkloadRegistry, PaperHeadlineAppsAreMemoryStreaming) {
  // NW, ADI, SM, GRU: the >1000x Swift-Sim-Memory applications of Fig. 4.
  for (const char* name : {"NW", "ADI", "SM", "GRU"}) {
    EXPECT_EQ(WorkloadByName(name).kind, WorkloadKind::kMemoryStreaming)
        << name;
  }
}

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, TraceIsStructurallyValid) {
  const Application app = BuildWorkload(GetParam(), TestScale());
  EXPECT_EQ(app.name, GetParam());
  ASSERT_FALSE(app.kernels.empty());
  for (const auto& kernel : app.kernels) {
    EXPECT_NO_THROW(kernel->ValidateTrace());
  }
}

TEST_P(WorkloadSuite, DeterministicForSeed) {
  const Application a = BuildWorkload(GetParam(), TestScale());
  const Application b = BuildWorkload(GetParam(), TestScale());
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t k = 0; k < a.kernels.size(); ++k) {
    ASSERT_EQ(a.kernels[k]->num_variants(), b.kernels[k]->num_variants());
    for (std::size_t v = 0; v < a.kernels[k]->num_variants(); ++v) {
      EXPECT_EQ(a.kernels[k]->variant(v).warps,
                b.kernels[k]->variant(v).warps);
    }
  }
}

TEST_P(WorkloadSuite, DifferentSeedDiffersIfRandomized) {
  WorkloadScale s1 = TestScale();
  WorkloadScale s2 = TestScale();
  s2.seed = 0x0ddba11u;
  const Application a = BuildWorkload(GetParam(), s1);
  const Application b = BuildWorkload(GetParam(), s2);
  // Structure must be identical even if addresses differ.
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  EXPECT_EQ(a.kernels[0]->info().num_ctas, b.kernels[0]->info().num_ctas);
}

TEST_P(WorkloadSuite, ScaleGrowsGrid) {
  WorkloadScale small = TestScale();
  WorkloadScale large = TestScale();
  large.scale = 0.5;
  const Application a = BuildWorkload(GetParam(), small);
  const Application b = BuildWorkload(GetParam(), large);
  EXPECT_GT(b.kernels[0]->info().num_ctas, a.kernels[0]->info().num_ctas);
  EXPECT_GT(b.TotalInstrs(), a.TotalInstrs());
}

TEST_P(WorkloadSuite, HasGlobalMemoryTraffic) {
  const Application app = BuildWorkload(GetParam(), TestScale());
  const TraceStats st = ComputeTraceStats(*app.kernels[0]);
  EXPECT_GT(st.global_mem_instrs, 0u);
  EXPECT_GT(st.mem_fraction(), 0.02);
  EXPECT_LT(st.mem_fraction(), 0.95);
}

TEST_P(WorkloadSuite, KernelFitsOnModeledGpus) {
  const Application app = BuildWorkload(GetParam(), TestScale());
  for (const auto& kernel : app.kernels) {
    const KernelInfo& info = kernel->info();
    EXPECT_LE(info.warps_per_cta * kWarpSize, 1024u);  // Turing CTA limit
    EXPECT_LE(info.smem_bytes_per_cta, 64u * 1024);
    EXPECT_LE(info.regs_per_thread, 255u);
  }
}

TEST_P(WorkloadSuite, IrregularAppsDiverge) {
  // II is irregular by access pattern (scatter), not by control flow.
  const WorkloadSpec& spec = WorkloadByName(GetParam());
  if (spec.kind != WorkloadKind::kIrregular || spec.name == "II") {
    GTEST_SKIP();
  }
  const Application app = BuildWorkload(GetParam(), TestScale());
  const TraceStats st = ComputeTraceStats(*app.kernels[0]);
  EXPECT_GT(st.divergent_instrs, 0u);
  EXPECT_LT(st.avg_active_lanes(), 31.9);
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const auto& spec : AllWorkloads()) names.push_back(spec.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSuite, ::testing::ValuesIn(AllNames()),
                         [](const auto& info) { return info.param; });

TEST(WorkloadScaleHelper, ScaledClamps) {
  EXPECT_EQ(Scaled(1.0, 100), 100u);
  EXPECT_EQ(Scaled(0.5, 100), 50u);
  EXPECT_EQ(Scaled(0.001, 100, 2), 2u);  // floor
  EXPECT_EQ(Scaled(2.0, 100), 200u);
}

TEST(Workloads, RejectsNonPositiveScale) {
  WorkloadScale s;
  s.scale = 0.0;
  EXPECT_THROW(BuildWorkload("BFS", s), SimError);
}

}  // namespace
}  // namespace swiftsim
