#include "analytical/functional_cache.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

CacheParams Tiny() {
  CacheParams p;
  p.size_bytes = 2 * 128 * 2;  // 2 sets x 2 ways
  p.assoc = 2;
  p.line_bytes = 128;
  p.sector_bytes = 32;
  return p;
}

TEST(FunctionalCache, MissThenHit) {
  FunctionalCache c(Tiny());
  EXPECT_FALSE(c.AccessLoad(0x1000, 0x1));
  EXPECT_TRUE(c.AccessLoad(0x1000, 0x1));
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(FunctionalCache, SectorGranularity) {
  FunctionalCache c(Tiny());
  c.AccessLoad(0x1000, 0x1);
  EXPECT_FALSE(c.AccessLoad(0x1000, 0x2));  // other sector not resident
  EXPECT_TRUE(c.AccessLoad(0x1000, 0x3));   // both now valid
}

TEST(FunctionalCache, LruEvictionWithinSet) {
  FunctionalCache c(Tiny());
  // Set 0 lines: 0x0000, 0x0100(set1)... set = (line/128) % 2.
  c.AccessLoad(0x0000, 0x1);  // set 0
  c.AccessLoad(0x0100, 0x1);  // set 0 (line index 2)
  c.AccessLoad(0x0000, 0x1);  // touch -> 0x0100 becomes LRU
  c.AccessLoad(0x0200, 0x1);  // set 0, evicts 0x0100
  EXPECT_TRUE(c.AccessLoad(0x0000, 0x1));
  EXPECT_FALSE(c.AccessLoad(0x0100, 0x1));  // evicted
}

TEST(FunctionalCache, StoresInstallWithoutCountingHits) {
  FunctionalCache c(Tiny());
  c.AccessStore(0x1000, 0x3);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_TRUE(c.AccessLoad(0x1000, 0x3));  // store-validated sectors hit
}

TEST(FunctionalCache, NonPowerOfTwoSetCount) {
  // Aggregate whole-chip L2s have non-pow2 set counts (e.g. 22 slices).
  CacheParams p = Tiny();
  p.size_bytes = 3 * 128 * 2;  // 3 sets
  FunctionalCache c(p);
  for (Addr line = 0; line < 100 * 128; line += 128) {
    c.AccessLoad(line, 0x1);
  }
  EXPECT_EQ(c.hits(), 0u);  // pure streaming, everything distinct
  EXPECT_EQ(c.accesses(), 100u);
}

}  // namespace
}  // namespace swiftsim
