#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Summary, EmptyThrowsOnMean) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), SimError);
  EXPECT_THROW(s.min(), SimError);
  EXPECT_THROW(s.max(), SimError);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(GeoMean, KnownValue) {
  EXPECT_NEAR(GeoMean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(GeoMean({5.0}), 5.0, 1e-9);
}

TEST(GeoMean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(GeoMean({}), SimError);
  EXPECT_THROW(GeoMean({1.0, 0.0}), SimError);
  EXPECT_THROW(GeoMean({1.0, -2.0}), SimError);
}

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(Mean({}), SimError);
}

TEST(RelError, Basic) {
  EXPECT_DOUBLE_EQ(RelError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelError(90.0, 100.0), 0.1);
  EXPECT_THROW(RelError(1.0, 0.0), SimError);
}

TEST(MeanAbsRelError, PairedVectors) {
  EXPECT_NEAR(MeanAbsRelError({110, 80}, {100, 100}), 0.15, 1e-12);
  EXPECT_THROW(MeanAbsRelError({1.0}, {1.0, 2.0}), SimError);
  EXPECT_THROW(MeanAbsRelError({}, {}), SimError);
}

TEST(Quantile, Interpolation) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_THROW(Quantile({}, 0.5), SimError);
  EXPECT_THROW(Quantile({1.0}, 1.5), SimError);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // underflow
  h.Add(0.0);    // bin 0
  h.Add(1.99);   // bin 0
  h.Add(2.0);    // bin 1
  h.Add(9.99);   // bin 4
  h.Add(10.0);   // overflow (hi-exclusive)
  h.Add(100.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_THROW(h.bin_count(5), SimError);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), SimError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), SimError);
}

}  // namespace
}  // namespace swiftsim
