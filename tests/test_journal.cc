// Write-ahead journal gates (DESIGN.md §16): CRC framing, append/recover
// round-trips, torn-tail truncation, corrupt-head rejection, segment
// rotation, and the quarantine helper for corrupt advisory caches.
#include "common/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace swiftsim {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::error_code ec;
  fs::remove(p, ec);
  fs::remove(p + ".corrupt", ec);
  return p;
}

std::uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto n = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Crc32, KnownAnswerAndChaining) {
  // The CRC-32/ISO-HDLC check value — pins the polynomial and the
  // reflect/invert conventions so journals stay readable across builds.
  const char kCheck[] = "123456789";
  EXPECT_EQ(Crc32(kCheck, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);

  // Chaining via `seed` must equal the one-shot computation.
  const std::uint32_t head = Crc32(kCheck, 4);
  EXPECT_EQ(Crc32(kCheck + 4, 5, head), Crc32(kCheck, 9));
}

TEST(Journal, AppendRecoverRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.journal");
  const std::vector<std::string> payloads = {
      "rung screen 0 123 0.5",
      "",                                   // empty payload is legal
      std::string("bin\0\nary\xff", 9),     // NULs and newlines too
      std::string(5000, 'x'),
  };
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    for (const std::string& p : payloads) j.Append(p);
    EXPECT_EQ(j.appended(), payloads.size());
    EXPECT_EQ(j.bytes(), FileSize(path));
    j.Close();
  }
  const JournalRecovery rec = ReadJournal(path);
  EXPECT_EQ(rec.records, payloads);
  EXPECT_EQ(rec.valid_bytes, FileSize(path));
  EXPECT_EQ(rec.truncated_bytes, 0u);
}

TEST(Journal, ReopenAppendsAfterRecoveredPrefix) {
  const std::string path = TempPath("journal_reopen.journal");
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    j.Append("one");
    j.Append("two");
  }
  {
    JournalRecovery rec;
    Journal j;
    j.Open(path, /*truncate=*/false, {}, &rec);
    ASSERT_EQ(rec.records.size(), 2u);
    j.Append("three");
  }
  const JournalRecovery rec = ReadJournal(path);
  EXPECT_EQ(rec.records,
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(Journal, TornTailIsTruncatedNotFatal) {
  const std::string path = TempPath("journal_torn.journal");
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    j.Append("alpha");
    j.Append("beta");
    j.Append("gamma-gets-torn");
  }
  // Cut the last record mid-frame — the shape a SIGKILL mid-write leaves.
  const std::uint64_t full = FileSize(path);
  fs::resize_file(path, full - 7);

  const JournalRecovery peek = ReadJournal(path);
  EXPECT_EQ(peek.records, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_GT(peek.truncated_bytes, 0u);

  // Recovery-mode Open physically drops the tail, then appends continue
  // from the valid prefix.
  JournalRecovery rec;
  Journal j;
  j.Open(path, /*truncate=*/false, {}, &rec);
  EXPECT_EQ(rec.records, peek.records);
  EXPECT_EQ(FileSize(path), rec.valid_bytes);
  j.Append("delta");
  j.Close();
  EXPECT_EQ(ReadJournal(path).records,
            (std::vector<std::string>{"alpha", "beta", "delta"}));
}

TEST(Journal, CorruptMidRecordTruncatesFromTheTear) {
  const std::string path = TempPath("journal_bitflip.journal");
  std::uint64_t first_two;
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    j.Append("aaaa");
    j.Append("bbbb");
    first_two = j.bytes();
    j.Append("cccc");
  }
  // Flip one payload byte of the middle... actually the last record: the
  // longest-valid-prefix rule must stop at the damage.
  std::string raw = ReadRaw(path);
  raw[raw.size() - 2] ^= 0x40;
  WriteRaw(path, raw);

  const JournalRecovery rec = ReadJournal(path);
  EXPECT_EQ(rec.records, (std::vector<std::string>{"aaaa", "bbbb"}));
  EXPECT_EQ(rec.valid_bytes, first_two);
  EXPECT_EQ(rec.truncated_bytes, FileSize(path) - first_two);
}

TEST(Journal, CorruptHeadRaisesInsteadOfEmptying) {
  const std::string path = TempPath("journal_badhead.journal");
  WriteRaw(path, "definitely not a journal file\n");
  EXPECT_THROW(ReadJournal(path), SimError);
  Journal j;
  EXPECT_THROW(j.Open(path, /*truncate=*/false, {}), SimError);
  // Truncating open is allowed to pave over it — that is an explicit
  // fresh-segment request, not silent recovery.
  j.Open(path, /*truncate=*/true, {});
  j.Append("fresh");
  j.Close();
  EXPECT_EQ(ReadJournal(path).records, (std::vector<std::string>{"fresh"}));
}

TEST(Journal, MissingFileStartsEmptyAndReadThrows) {
  const std::string path = TempPath("journal_missing.journal");
  EXPECT_THROW(ReadJournal(path), SimError);
  Journal j;
  JournalRecovery rec;
  j.Open(path, /*truncate=*/false, {}, &rec);
  EXPECT_TRUE(rec.records.empty());
  j.Append("born");
  j.Close();
  EXPECT_EQ(ReadJournal(path).records, (std::vector<std::string>{"born"}));
}

TEST(Journal, RotationCompactsAtomically) {
  const std::string path = TempPath("journal_rotate.journal");
  Journal::Options opt;
  opt.rotate_bytes = 64;
  Journal j;
  j.Open(path, /*truncate=*/true, opt);
  for (int i = 0; i < 8; ++i) j.Append("record-" + std::to_string(i));
  EXPECT_TRUE(j.NeedsRotation());

  j.Rotate({"survivor-1", "survivor-2"});
  EXPECT_EQ(j.rotations(), 1u);
  j.Append("post-rotate");
  j.Close();

  const JournalRecovery rec = ReadJournal(path);
  EXPECT_EQ(rec.records, (std::vector<std::string>{
                             "survivor-1", "survivor-2", "post-rotate"}));
  EXPECT_EQ(rec.truncated_bytes, 0u);
}

TEST(Journal, QuarantineMovesFileAside) {
  const std::string path = TempPath("quarantine_victim.cache");
  WriteRaw(path, "garbled cache bytes");
  QuarantineCorruptFile(path, "checksum mismatch (test)");
  EXPECT_FALSE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_EQ(ReadRaw(path + ".corrupt"), "garbled cache bytes");

  // A second quarantine of the same name replaces the previous one.
  WriteRaw(path, "second casualty");
  QuarantineCorruptFile(path, "checksum mismatch again (test)");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(ReadRaw(path + ".corrupt"), "second casualty");
}

}  // namespace
}  // namespace swiftsim
