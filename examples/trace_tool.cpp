// Trace tooling: synthesize a workload, export it to the .sstrace text
// format (the Trace Parser's input, §III-A), reload it, verify the
// round-trip, and print per-kernel statistics.
//
//   ./trace_tool [workload] [scale] [output.sstrace]
#include <cstdio>
#include <string>

#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  const std::string name = argc > 1 ? argv[1] : "NW";
  WorkloadScale scale;
  scale.scale = argc > 2 ? std::stod(argv[2]) : 0.1;
  const std::string path =
      argc > 3 ? argv[3] : "/tmp/" + name + ".sstrace";

  const Application app = BuildWorkload(name, scale);
  WriteApplicationFile(app, path);
  std::printf("wrote %s (%zu kernels) to %s\n", name.c_str(),
              app.kernels.size(), path.c_str());

  const Application reloaded = ReadApplicationFile(path);
  for (const auto& kernel : reloaded.kernels) {
    kernel->ValidateTrace();
    const KernelInfo& info = kernel->info();
    const TraceStats st = ComputeTraceStats(*kernel);
    std::printf("\nkernel %-22s grid=%u ctas x %u warps (smem=%uB "
                "regs=%u)\n",
                info.name.c_str(), info.num_ctas, info.warps_per_cta,
                info.smem_bytes_per_cta, info.regs_per_thread);
    std::printf("  %s\n", st.ToString().c_str());
    std::printf("  mem fraction %.1f%%, avg active lanes %.1f\n",
                100.0 * st.mem_fraction(), st.avg_active_lanes());
  }
  std::printf("\nround-trip validated: %llu dynamic instructions\n",
              static_cast<unsigned long long>(reloaded.TotalInstrs()));
  return 0;
}
