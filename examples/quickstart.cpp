// Quickstart: synthesize a workload, run it through the four simulator
// configurations on an RTX 2080 Ti, and compare cycles and speed.
//
//   ./quickstart [workload] [scale]
//
// Defaults: GEMM at scale 0.15 (a few seconds end to end).
#include <cstdio>
#include <string>

#include "config/presets.h"
#include "sim/report.h"
#include "swiftsim/simulator.h"
#include "trace/trace_stats.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  const std::string name = argc > 1 ? argv[1] : "GEMM";
  WorkloadScale scale;
  scale.scale = argc > 2 ? std::stod(argv[2]) : 0.15;

  const GpuConfig gpu = Rtx2080TiConfig();
  const Application app = BuildWorkload(name, scale);
  const TraceStats stats = ComputeTraceStats(*app.kernels[0]);
  std::printf("workload %s on %s\n", name.c_str(), gpu.name.c_str());
  std::printf("  first kernel: %s\n", stats.ToString().c_str());

  const SimLevel levels[] = {SimLevel::kSilicon, SimLevel::kDetailed,
                             SimLevel::kSwiftSimBasic,
                             SimLevel::kSwiftSimMemory};
  double baseline_wall = 0;
  Cycle silicon_cycles = 0;
  std::printf("%-22s %12s %10s %9s %8s\n", "simulator", "cycles", "err_vs_hw",
              "wall_s", "speedup");
  PerfReport basic_report;
  for (SimLevel level : levels) {
    const SimResult r = RunSimulation(app, gpu, level);
    if (level == SimLevel::kSilicon) silicon_cycles = r.total_cycles;
    if (level == SimLevel::kDetailed) baseline_wall = r.wall_seconds;
    if (level == SimLevel::kSwiftSimBasic) basic_report = BuildReport(r);
    const double err =
        silicon_cycles
            ? 100.0 * (static_cast<double>(r.total_cycles) - silicon_cycles) /
                  static_cast<double>(silicon_cycles)
            : 0.0;
    const double speedup =
        baseline_wall > 0 && level != SimLevel::kSilicon
            ? baseline_wall / r.wall_seconds
            : 1.0;
    std::printf("%-22s %12llu %9.1f%% %9.3f %7.1fx\n",
                r.simulator.c_str(),
                static_cast<unsigned long long>(r.total_cycles), err,
                r.wall_seconds, speedup);
  }
  std::printf("\nswift-sim-basic bottleneck report (Metrics Gatherer):\n%s\n",
              basic_report.ToString().c_str());
  return 0;
}
