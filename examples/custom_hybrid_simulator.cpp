// Building a custom hybrid simulator from the framework's modules — the
// paper's §III-B3 point that ModelSelection is per-module, so architects
// can mix modeling approaches beyond the two presets.
//
// Here we build custom mixes and compare them with the presets:
//   A: cycle-accurate ALU + analytical memory (the "memory architect
//      doesn't care about ALUs" inverse of Swift-Sim-Basic)
//   B: hybrid ALU + detailed frontend + cycle-accurate memory
//   C: everything simplified (Swift-Sim-Memory)
//
//   ./custom_hybrid_simulator [workload] [scale]
#include <chrono>
#include <cstdio>
#include <string>

#include "analytical/cache_prepass.h"
#include "config/presets.h"
#include "sim/gpu_model.h"
#include "workloads/workload.h"

namespace {

using namespace swiftsim;

struct Mix {
  const char* name;
  ModelSelection sel;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "HOTSPOT";
  WorkloadScale scale;
  scale.scale = argc > 2 ? std::stod(argv[2]) : 0.15;
  const Application app = BuildWorkload(name, scale);
  const GpuConfig gpu = Rtx2080TiConfig();
  const MemProfile profile = BuildMemProfile(app, gpu);

  const Mix mixes[] = {
      {"detailed (baseline)",
       {AluModelKind::kCycleAccurate, MemModelKind::kCycleAccurate,
        FrontendKind::kDetailed, false}},
      {"A: CA alu + ana mem",
       {AluModelKind::kCycleAccurate, MemModelKind::kAnalytical,
        FrontendKind::kDetailed, false}},
      {"B: hyb alu + CA mem",
       {AluModelKind::kHybridAnalytical, MemModelKind::kCycleAccurate,
        FrontendKind::kDetailed, false}},
      {"C: all simplified",
       {AluModelKind::kHybridAnalytical, MemModelKind::kAnalytical,
        FrontendKind::kSimplified, false}},
  };

  std::printf("custom hybrid mixes on %s (every module keeps its fixed "
              "interface; only the\nmodeling approach changes)\n\n",
              name.c_str());
  std::printf("%-24s %12s %10s %9s\n", "module mix", "cycles", "wall_s",
              "speedup");
  double base_wall = 0;
  for (const Mix& mix : mixes) {
    const bool needs_profile = mix.sel.mem == MemModelKind::kAnalytical;
    GpuModel model(gpu, mix.sel, needs_profile ? &profile : nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult r = model.RunApplication(app);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (base_wall == 0) base_wall = wall;
    std::printf("%-24s %12llu %10.3f %8.1fx\n", mix.name,
                static_cast<unsigned long long>(r.total_cycles), wall,
                base_wall / wall);
  }
  return 0;
}
