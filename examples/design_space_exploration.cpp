// Design-space exploration — the paper's motivating use case (§III-D):
// "Assuming we need to explore a new warp scheduling algorithm, Warp
// Scheduler & Dispatch needs cycle-accurate simulation ... other modules
// can be simplified."
//
// This example keeps the scheduler module cycle-accurate, simplifies the
// ALU pipeline with the hybrid analytical model (Swift-Sim-Basic), and
// sweeps the three scheduler policies and two L1 sizes over a workload —
// the kind of experiment that would be painfully slow on the detailed
// baseline.
//
//   ./design_space_exploration [workload] [scale]
#include <cstdio>
#include <string>

#include "config/presets.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  const std::string name = argc > 1 ? argv[1] : "BFS";
  WorkloadScale scale;
  scale.scale = argc > 2 ? std::stod(argv[2]) : 0.15;
  const Application app = BuildWorkload(name, scale);

  std::printf("DSE on %s with Swift-Sim-Basic (scheduler & caches stay "
              "cycle-accurate)\n\n",
              name.c_str());

  std::printf("%-28s %14s %14s\n", "configuration", "cycles", "ipc(x1000)");
  for (SchedPolicy pol :
       {SchedPolicy::kGto, SchedPolicy::kLrr, SchedPolicy::kTwoLevel}) {
    for (std::uint64_t l1_kb : {64, 128}) {
      GpuConfig gpu = Rtx2080TiConfig();
      gpu.sched_policy = pol;
      gpu.l1.size_bytes = l1_kb * 1024;
      gpu.Validate();
      const SimResult r = RunSimulation(app, gpu, SimLevel::kSwiftSimBasic);
      const double ipc =
          static_cast<double>(r.instructions) / r.total_cycles;
      char label[64];
      std::snprintf(label, sizeof label, "%s + %lluKB L1",
                    ToString(pol).c_str(),
                    static_cast<unsigned long long>(l1_kb));
      std::printf("%-28s %14llu %14.0f\n", label,
                  static_cast<unsigned long long>(r.total_cycles),
                  ipc * 1000);
    }
  }
  std::printf("\nEach configuration ran at hybrid speed while the module "
              "under study\n(the scheduler) stayed cycle-accurate.\n");
  return 0;
}
