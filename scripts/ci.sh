#!/usr/bin/env bash
# Continuous-integration driver. Mirrors .github/workflows/ci.yml so the
# full gate runs locally with one command:
#
#   scripts/ci.sh            # all stages
#   scripts/ci.sh build      # tier-1 build + full ctest
#   scripts/ci.sh tsan       # ThreadSanitizer build + tsan-labelled suites
#   scripts/ci.sh asan       # ASan+UBSan build + chaos-labelled suites
#   scripts/ci.sh perf       # <10 s hot-path bench smoke (perf label)
#
# Build trees: build/ (tier-1 + perf), build-tsan/ (ThreadSanitizer) and
# build-asan/ (Address+UndefinedBehaviorSanitizer).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

configure() { # <build-dir> [extra cmake args...]
  local dir="$1"; shift
  if [ ! -f "$dir/CMakeCache.txt" ]; then
    # ccache (when present) makes warm CI rebuilds near-instant; the
    # workflow persists its directory across runs via actions/cache.
    local launcher=()
    if command -v ccache >/dev/null 2>&1; then
      launcher=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
    fi
    cmake -B "$dir" -DCMAKE_BUILD_TYPE=Release "${launcher[@]}" "$@"
  fi
}

stage_build() {
  echo "==> tier-1: build + full test suite"
  configure build
  cmake --build build -j "$JOBS"
  # Everything except the perf smoke (run separately so a loaded CI
  # machine failing the timing gate does not mask a correctness failure).
  ctest --test-dir build -LE perf --output-on-failure
}

stage_tsan() {
  echo "==> tsan: ThreadSanitizer build + tsan-labelled suites"
  configure build-tsan -DSWIFTSIM_TSAN=ON
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan -L tsan --output-on-failure
}

stage_asan() {
  echo "==> asan: ASan+UBSan build + chaos-labelled suites"
  configure build-asan -DSWIFTSIM_ASAN=ON
  cmake --build build-asan -j "$JOBS"
  # The chaos label covers fault injection, the livelock/watchdog fixtures,
  # the malformed-input tables, and the §16 crash-recovery gates
  # (journal/torn-tail suites, the supervisor crash matrix, and the
  # chaos_recovery_smoke / chaos_supervise_smoke SIGKILL-and-resume
  # benches, which self-skip with exit 77 where fork/kill is unavailable)
  # — the inputs most likely to surface memory errors.
  ctest --test-dir build-asan -L chaos --output-on-failure
}

stage_perf() {
  echo "==> perf: bench smoke (hot-path throughput + memo exactness +"
  echo "          parallel scaling + DSE sweep + trace compaction +"
  echo "          persistent-service gates)"
  configure build
  cmake --build build -j "$JOBS" \
    --target bench_hotpath bench_memo bench_parallel_scaling bench_dse \
    bench_trace bench_service swiftsimd
  # perf_parallel_smoke, perf_dse_smoke, perf_trace_smoke and
  # perf_service_smoke self-skip (exit 77) on hosts with < 4 hardware
  # threads, where their speedup gates are meaningless.
  ctest --test-dir build -L perf --output-on-failure
}

case "${1:-all}" in
  build) stage_build ;;
  tsan)  stage_tsan ;;
  asan)  stage_asan ;;
  perf)  stage_perf ;;
  all)   stage_build; stage_tsan; stage_asan; stage_perf ;;
  *) echo "usage: $0 [build|tsan|asan|perf|all]" >&2; exit 2 ;;
esac
