// swiftsimd — the persistent simulation daemon (DESIGN.md §15).
//
// Keeps one Swift-Sim process alive so repeated jobs hit the process-global
// warm caches (MemoCache, ProfileCache, built-trace cache) instead of
// paying cold start per invocation. Speaks NDJSON — one JSON request per
// line, one JSON response per line — over either:
//
//   stdin/stdout (default):   swiftsimd --threads 8 --memo-file warm.memo
//   a unix socket:            swiftsimd --socket /tmp/swiftsim.sock
//
// Example session:
//   > {"op":"ping","id":"0"}
//   < {"id":"0","ok":true,"status":"pong"}
//   > {"id":"1","workload":"BFS","scale":0.05,"iterations":8}
//   < {"id":"1","ok":true,"status":"ok","cycles":...,"memo_hits":...}
//   > {"op":"shutdown","id":"2"}
//   < {"id":"2","ok":true,"status":"shutting_down"}
//
// Responses stream in completion order — correlate by "id". A `shutdown`
// op drains every admitted job, persists the memo file (when configured)
// and acknowledges last.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/status.h"
#include "swiftsim/service.h"

namespace {

using swiftsim::ParallelMode;
using swiftsim::ParallelModeFromString;
using swiftsim::SimError;
using swiftsim::service::ServeLines;
using swiftsim::service::ServeResult;
using swiftsim::service::ServeTransport;
using swiftsim::service::ServiceOptions;
using swiftsim::service::SimulationService;

void PrintUsage() {
  std::fprintf(stderr, R"(usage: swiftsimd [options]

Persistent Swift-Sim simulation daemon. NDJSON protocol: one JSON request
per line on stdin (default) or a unix socket, one JSON response per line.

  --socket PATH         serve a unix socket instead of stdin/stdout
  --threads N           worker budget (default: hardware concurrency)
  --mode auto|app|intra batch parallelization policy (default auto)
  --max-concurrent N    concurrent jobs the lane plan is shaped for
  --queue N             admission queue capacity (default 64)
  --memo-file PATH      load memo cache on start, save on shutdown
  --trace-cache DIR     on-disk compact trace cache directory
  --timeout-sec S       default per-request wall-clock watchdog (0 = off)
  --watchdog-cycles N   stall-window watchdog in simulated cycles (0 = off)
  --degrade-on-hang     analytical fallback instead of a timeout error
  --max-scale S         reject jobs with scale > S (default 2.0)
  --max-iterations N    reject jobs with iterations > N (default 1024)
  --memo-max-entries N  cap the global memo/profile caches (0 = unbounded)
  --memo-max-bytes N    cap the memo cache footprint (0 = unbounded)
  --help                this text
)");
}

struct Flags {
  std::string socket_path;
  ServiceOptions svc;
};

bool ParseFlags(int argc, char** argv, Flags* out) {
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "swiftsimd: %s requires a value\n", argv[i]);
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto take = [&]() -> const char* {
      const char* v = need_value(i);
      if (v != nullptr) ++i;
      return v;
    };
    try {
      if (flag == "--help" || flag == "-h") {
        PrintUsage();
        std::exit(0);
      } else if (flag == "--socket") {
        const char* v = take();
        if (v == nullptr) return false;
        out->socket_path = v;
      } else if (flag == "--threads") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.threads = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--mode") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.mode = ParallelModeFromString(v);
      } else if (flag == "--max-concurrent") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.max_concurrent = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--queue") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.queue_capacity = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--memo-file") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_file = v;
      } else if (flag == "--trace-cache") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.trace_cache_dir = v;
      } else if (flag == "--timeout-sec") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.default_timeout_sec = std::stod(v);
      } else if (flag == "--watchdog-cycles") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.watchdog_cycles = std::stoull(v);
      } else if (flag == "--degrade-on-hang") {
        out->svc.degrade_on_hang = true;
      } else if (flag == "--max-scale") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.limits.max_scale = std::stod(v);
      } else if (flag == "--max-iterations") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.limits.max_iterations =
            static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--memo-max-entries") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_max_entries = std::stoull(v);
      } else if (flag == "--memo-max-bytes") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_max_bytes = std::stoull(v);
      } else {
        std::fprintf(stderr, "swiftsimd: unknown flag '%s'\n", flag.c_str());
        PrintUsage();
        return false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "swiftsimd: bad value for %s: %s\n", flag.c_str(),
                   e.what());
      return false;
    }
  }
  return true;
}

bool ReadLineFd(int fd, std::string* buffer, std::string* line) {
  // `buffer` carries bytes read past the previous newline.
  for (;;) {
    std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (buffer->empty()) return false;
      // Final unterminated line.
      line->swap(*buffer);
      buffer->clear();
      return true;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

int ServeSocket(const std::string& path, SimulationService& svc) {
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("swiftsimd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "swiftsimd: socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("swiftsimd: bind");
    return 1;
  }
  if (::listen(listen_fd, 16) != 0) {
    std::perror("swiftsimd: listen");
    return 1;
  }
  std::fprintf(stderr, "swiftsimd: serving %s\n", path.c_str());

  std::vector<std::thread> connections;
  std::atomic<bool> shutting_down{false};
  for (;;) {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) break;  // listener shut down (or fatal error)
    connections.emplace_back([conn, &svc, listen_fd, &shutting_down] {
      std::string buffer;
      auto read_line = [conn, &buffer](std::string* line) {
        return ReadLineFd(conn, &buffer, line);
      };
      auto write_line = [conn](const std::string& line) {
        std::string framed = line + "\n";
        const char* p = framed.data();
        std::size_t left = framed.size();
        while (left > 0) {
          ssize_t n = ::write(conn, p, left);
          if (n <= 0) return;  // client went away; responses are best-effort
          p += n;
          left -= static_cast<std::size_t>(n);
        }
      };
      // The service is shared by every connection; Stop() on shutdown is
      // handled here so we can also unblock accept().
      ServeResult res =
          ServeTransport(read_line, write_line, svc, /*stop_on_shutdown=*/false);
      if (res.shutdown) {
        shutting_down = true;
        svc.Stop();
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      ::close(conn);
    });
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  if (!shutting_down) svc.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  try {
    SimulationService svc(flags.svc);
    if (!flags.socket_path.empty()) {
      return ServeSocket(flags.socket_path, svc);
    }
    ServeResult res = ServeLines(std::cin, std::cout, svc);
    if (!res.shutdown) svc.Stop();  // EOF: drain and persist anyway
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "swiftsimd: %s\n", e.what());
    return 1;
  }
}
