// swiftsimd — the persistent simulation daemon (DESIGN.md §15).
//
// Keeps one Swift-Sim process alive so repeated jobs hit the process-global
// warm caches (MemoCache, ProfileCache, built-trace cache) instead of
// paying cold start per invocation. Speaks NDJSON — one JSON request per
// line, one JSON response per line — over either:
//
//   stdin/stdout (default):   swiftsimd --threads 8 --memo-file warm.memo
//   a unix socket:            swiftsimd --socket /tmp/swiftsim.sock
//
// Example session:
//   > {"op":"ping","id":"0"}
//   < {"id":"0","ok":true,"status":"pong"}
//   > {"id":"1","workload":"BFS","scale":0.05,"iterations":8}
//   < {"id":"1","ok":true,"status":"ok","cycles":...,"memo_hits":...}
//   > {"op":"shutdown","id":"2"}
//   < {"id":"2","ok":true,"status":"shutting_down"}
//
// Responses stream in completion order — correlate by "id". A `shutdown`
// op drains every admitted job, persists the memo file (when configured)
// and acknowledges last.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/status.h"
#include "swiftsim/service.h"
#include "swiftsim/supervisor.h"

namespace {

using swiftsim::ParallelMode;
using swiftsim::ParallelModeFromString;
using swiftsim::SimError;
using swiftsim::service::ServeLines;
using swiftsim::service::ServeResult;
using swiftsim::service::ServeTransport;
using swiftsim::service::ServiceOptions;
using swiftsim::service::SimulationService;
using swiftsim::service::Supervisor;
using swiftsim::service::SupervisorOptions;

void PrintUsage() {
  std::fprintf(stderr, R"(usage: swiftsimd [options]

Persistent Swift-Sim simulation daemon. NDJSON protocol: one JSON request
per line on stdin (default) or a unix socket, one JSON response per line.

  --socket PATH         serve a unix socket instead of stdin/stdout
  --threads N           worker budget (default: hardware concurrency)
  --mode auto|app|intra batch parallelization policy (default auto)
  --max-concurrent N    concurrent jobs the lane plan is shaped for
  --queue N             admission queue capacity (default 64)
  --memo-file PATH      load memo cache on start, save on shutdown
  --trace-cache DIR     on-disk compact trace cache directory
  --timeout-sec S       default per-request wall-clock watchdog (0 = off)
  --watchdog-cycles N   stall-window watchdog in simulated cycles (0 = off)
  --degrade-on-hang     analytical fallback instead of a timeout error
  --max-scale S         reject jobs with scale > S (default 2.0)
  --max-iterations N    reject jobs with iterations > N (default 1024)
  --memo-max-entries N  cap the global memo/profile caches (0 = unbounded)
  --memo-max-bytes N    cap the memo cache footprint (0 = unbounded)

Crash recovery (DESIGN.md §16; stdin/stdout transport only):
  --supervise           run the service in a forked worker, restart it on
                        crash with jittered exponential backoff, replay
                        in-flight jobs; jobs whose worker died past the
                        retry budget get a typed worker_crashed error
  --max-restarts N      worker restart budget (default 5)
  --job-retries N       crash-retry budget per in-flight job (default 1)
  --restart-backoff MS  initial backoff before a restart (default 50)
  --job-journal PATH    write-ahead journal of in-flight jobs
  --worker-pid-file P   current worker pid, rewritten on each spawn
  --help                this text

SIGTERM/SIGINT drain the service (finish admitted jobs, persist the memo
file) before exiting; under --supervise they are forwarded to the worker.
)");
}

struct Flags {
  std::string socket_path;
  bool supervise = false;
  SupervisorOptions sup;
  ServiceOptions svc;
};

bool ParseFlags(int argc, char** argv, Flags* out) {
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "swiftsimd: %s requires a value\n", argv[i]);
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto take = [&]() -> const char* {
      const char* v = need_value(i);
      if (v != nullptr) ++i;
      return v;
    };
    try {
      if (flag == "--help" || flag == "-h") {
        PrintUsage();
        std::exit(0);
      } else if (flag == "--socket") {
        const char* v = take();
        if (v == nullptr) return false;
        out->socket_path = v;
      } else if (flag == "--threads") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.threads = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--mode") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.mode = ParallelModeFromString(v);
      } else if (flag == "--max-concurrent") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.max_concurrent = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--queue") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.queue_capacity = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--memo-file") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_file = v;
      } else if (flag == "--trace-cache") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.trace_cache_dir = v;
      } else if (flag == "--timeout-sec") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.default_timeout_sec = std::stod(v);
      } else if (flag == "--watchdog-cycles") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.watchdog_cycles = std::stoull(v);
      } else if (flag == "--degrade-on-hang") {
        out->svc.degrade_on_hang = true;
      } else if (flag == "--max-scale") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.limits.max_scale = std::stod(v);
      } else if (flag == "--max-iterations") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.limits.max_iterations =
            static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--memo-max-entries") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_max_entries = std::stoull(v);
      } else if (flag == "--memo-max-bytes") {
        const char* v = take();
        if (v == nullptr) return false;
        out->svc.memo_max_bytes = std::stoull(v);
      } else if (flag == "--supervise") {
        out->supervise = true;
      } else if (flag == "--max-restarts") {
        const char* v = take();
        if (v == nullptr) return false;
        out->sup.max_restarts = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--job-retries") {
        const char* v = take();
        if (v == nullptr) return false;
        out->sup.max_job_retries = static_cast<unsigned>(std::stoul(v));
      } else if (flag == "--restart-backoff") {
        const char* v = take();
        if (v == nullptr) return false;
        out->sup.backoff_initial_ms = std::stod(v);
      } else if (flag == "--job-journal") {
        const char* v = take();
        if (v == nullptr) return false;
        out->sup.job_journal = v;
      } else if (flag == "--worker-pid-file") {
        const char* v = take();
        if (v == nullptr) return false;
        out->sup.worker_pid_file = v;
      } else {
        std::fprintf(stderr, "swiftsimd: unknown flag '%s'\n", flag.c_str());
        PrintUsage();
        return false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "swiftsimd: bad value for %s: %s\n", flag.c_str(),
                   e.what());
      return false;
    }
  }
  return true;
}

// --- SIGTERM/SIGINT drain (DESIGN.md §16) -------------------------------
//
// A handler may only touch async-signal-safe state, so it writes one byte
// to a self-pipe; a watcher thread runs the full Stop() — drain admitted
// jobs, persist the memo file — off the handler and exits the process.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

// Under --supervise the parent owns the signals and forwards them to the
// current worker, whose own drain handler persists state and exits
// cleanly; the supervisor then sees a clean exit and follows.
void OnForwardSignal(int sig) {
  const long pid = swiftsim::service::SupervisedWorkerPid();
  if (pid > 0) ::kill(static_cast<pid_t>(pid), sig);
}

void InstallDrainHandlers(SimulationService* svc) {
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("swiftsimd: signal pipe");
    return;  // serve without signal draining rather than not at all
  }
  std::thread([svc] {
    char byte = 0;
    ssize_t n;
    do {
      n = ::read(g_signal_pipe[0], &byte, 1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    std::fprintf(stderr, "swiftsimd: signal received, draining\n");
    svc->Stop();  // finish admitted jobs + persist the memo file
    ::_Exit(0);
  }).detach();
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
}

bool ReadLineFd(int fd, std::string* buffer, std::string* line) {
  // `buffer` carries bytes read past the previous newline.
  for (;;) {
    std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (buffer->empty()) return false;
      // Final unterminated line.
      line->swap(*buffer);
      buffer->clear();
      return true;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

int ServeSocket(const std::string& path, SimulationService& svc) {
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("swiftsimd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "swiftsimd: socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("swiftsimd: bind");
    return 1;
  }
  if (::listen(listen_fd, 16) != 0) {
    std::perror("swiftsimd: listen");
    return 1;
  }
  std::fprintf(stderr, "swiftsimd: serving %s\n", path.c_str());

  std::vector<std::thread> connections;
  std::atomic<bool> shutting_down{false};
  for (;;) {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) break;  // listener shut down (or fatal error)
    connections.emplace_back([conn, &svc, listen_fd, &shutting_down] {
      std::string buffer;
      auto read_line = [conn, &buffer](std::string* line) {
        return ReadLineFd(conn, &buffer, line);
      };
      auto write_line = [conn](const std::string& line) {
        std::string framed = line + "\n";
        const char* p = framed.data();
        std::size_t left = framed.size();
        while (left > 0) {
          ssize_t n = ::write(conn, p, left);
          if (n <= 0) return;  // client went away; responses are best-effort
          p += n;
          left -= static_cast<std::size_t>(n);
        }
      };
      // The service is shared by every connection; Stop() on shutdown is
      // handled here so we can also unblock accept().
      ServeResult res =
          ServeTransport(read_line, write_line, svc, /*stop_on_shutdown=*/false);
      if (res.shutdown) {
        shutting_down = true;
        svc.Stop();
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      ::close(conn);
    });
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  if (!shutting_down) svc.Stop();
  return 0;
}

/// The supervised worker: builds the real service on the supervisor's
/// pipe ends and serves until EOF/shutdown. Runs in the forked child.
int WorkerMain(int in_fd, int out_fd, const ServiceOptions& opt) {
  SimulationService svc(opt);
  InstallDrainHandlers(&svc);  // supervisor forwards SIGTERM/SIGINT here
  std::string buffer;
  auto read_line = [in_fd, &buffer](std::string* line) {
    return ReadLineFd(in_fd, &buffer, line);
  };
  auto write_line = [out_fd](const std::string& line) {
    std::string framed = line + "\n";
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::write(out_fd, p, left);
      if (n <= 0) return;  // supervisor went away; nobody to answer
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  };
  const ServeResult res = ServeTransport(read_line, write_line, svc);
  if (!res.shutdown) svc.Stop();  // EOF: drain and persist anyway
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  try {
    if (flags.supervise) {
      if (!flags.socket_path.empty()) {
        std::fprintf(stderr,
                     "swiftsimd: --supervise supports the stdin/stdout "
                     "transport only\n");
        return 2;
      }
      // The parent must stay free of simulation state (ThreadPool,
      // SimulationService) so the worker can fork at any moment; it only
      // pumps lines and forwards signals.
      std::signal(SIGTERM, OnForwardSignal);
      std::signal(SIGINT, OnForwardSignal);
      flags.sup.worker = flags.svc;
      Supervisor sup(flags.sup, WorkerMain);
      auto read_line = [](std::string* line) {
        return static_cast<bool>(std::getline(std::cin, *line));
      };
      auto write_line = [](const std::string& line) {
        std::cout << line << '\n' << std::flush;
      };
      return sup.Serve(read_line, write_line);
    }

    SimulationService svc(flags.svc);
    InstallDrainHandlers(&svc);  // SIGTERM/SIGINT: drain + persist + exit
    if (!flags.socket_path.empty()) {
      return ServeSocket(flags.socket_path, svc);
    }
    ServeResult res = ServeLines(std::cin, std::cout, svc);
    if (!res.shutdown) svc.Stop();  // EOF: drain and persist anyway
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "swiftsimd: %s\n", e.what());
    return 1;
  }
}
